//! # perfdmf-explorer
//!
//! PerfExplorer (paper §5.3): "a data mining application for doing
//! parallel performance analysis on very large profile datasets",
//! designed as a client-server system in which "the client makes requests
//! to an analysis server back end, which is integrated with a performance
//! database, using PerfDMF."
//!
//! * [`AnalysisServer`] — worker pool over the shared database; executes
//!   clustering and correlation requests with `perfdmf-analysis` (the R
//!   substitute) and persists results through the PerfDMF API into the
//!   `analysis_settings` / `analysis_result` schema extension.
//! * [`ExplorerClient`] — blocking request handle (cloneable; many
//!   clients share one server).
//! * [`Request`] / [`Response`] — the wire protocol.
//!
//! Transport is an in-process crossbeam channel rather than the paper's
//! socket; the architecture (client → server → PerfDMF → DBMS → analysis
//! package → results saved via PerfDMF) is preserved.

mod client;
mod protocol;
mod server;

pub use client::{ExplorerClient, RetryPolicy};
pub use protocol::{ClusterMethod, ClusterSummary, FeatureSpace, Request, Response};
pub use server::{AnalysisServer, ANALYSIS_DDL, DEFAULT_QUEUE_CAPACITY};

#[cfg(test)]
mod tests {
    use super::*;
    use perfdmf_core::DatabaseSession;
    use perfdmf_db::Connection;
    use perfdmf_profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId};

    /// Trial with two obvious thread-behaviour groups.
    fn bimodal_trial(session: &mut DatabaseSession) -> i64 {
        let mut p = Profile::new("bimodal");
        let m = p.add_metric(Metric::measured("TIME"));
        let a = p.add_event(IntervalEvent::ungrouped("compute"));
        let b = p.add_event(IntervalEvent::ungrouped("exchange"));
        p.add_threads((0..32).map(|n| ThreadId::new(n, 0, 0)));
        for (i, &t) in p.threads().to_vec().iter().enumerate() {
            // first half compute-heavy, second half exchange-heavy
            let (ca, cb) = if i < 16 { (100.0, 5.0) } else { (10.0, 80.0) };
            let j = (i % 4) as f64 * 0.1;
            p.set_interval(a, t, m, IntervalData::new(ca + j, ca + j, 10.0, 0.0));
            p.set_interval(b, t, m, IntervalData::new(cb - j, cb - j, 10.0, 0.0));
        }
        session.store_profile("app", "exp", &p).unwrap()
    }

    fn setup() -> (Connection, i64) {
        let conn = Connection::open_in_memory();
        let mut session = DatabaseSession::new(conn.clone()).unwrap();
        let trial = bimodal_trial(&mut session);
        (conn, trial)
    }

    #[test]
    fn end_to_end_clustering() {
        let (conn, trial) = setup();
        let server = AnalysisServer::start(conn.clone(), 2).unwrap();
        let client = ExplorerClient::connect(&server);
        match client.cluster(trial, "TIME", 5) {
            Response::Clustering {
                k,
                assignments,
                summaries,
                silhouette,
                settings_id,
                ..
            } => {
                assert_eq!(k, 2, "silhouette should pick the planted k");
                assert_eq!(assignments.len(), 32);
                // the two halves land in different clusters
                assert!(assignments[..16].iter().all(|&a| a == assignments[0]));
                assert!(assignments[16..].iter().all(|&a| a == assignments[16]));
                assert_ne!(assignments[0], assignments[16]);
                assert!(silhouette > 0.5);
                let sizes: Vec<_> = summaries.iter().map(|s| s.size).collect();
                assert_eq!(sizes.iter().sum::<usize>(), 32);
                // results were persisted and can be browsed back
                match client.fetch(settings_id) {
                    Response::Stored { method, rows } => {
                        assert_eq!(method, "kmeans");
                        assert!(rows.iter().any(|(t, _, _, _)| t == "assignment"));
                        assert!(rows.iter().any(|(t, _, _, _)| t == "centroid"));
                        assert!(rows.iter().any(|(t, _, _, _)| t == "silhouette"));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn correlation_request() {
        let conn = Connection::open_in_memory();
        let mut session = DatabaseSession::new(conn.clone()).unwrap();
        // trial with two perfectly correlated metrics and one anti-correlated
        let mut p = Profile::new("corr");
        let m1 = p.add_metric(Metric::measured("A"));
        let m2 = p.add_metric(Metric::measured("B"));
        let m3 = p.add_metric(Metric::measured("C"));
        let e = p.add_event(IntervalEvent::ungrouped("f"));
        p.add_threads((0..16).map(|n| ThreadId::new(n, 0, 0)));
        for (i, &t) in p.threads().to_vec().iter().enumerate() {
            let x = i as f64;
            p.set_interval(e, t, m1, IntervalData::new(x, x, 1.0, 0.0));
            p.set_interval(
                e,
                t,
                m2,
                IntervalData::new(2.0 * x + 1.0, 2.0 * x + 1.0, 1.0, 0.0),
            );
            p.set_interval(e, t, m3, IntervalData::new(100.0 - x, 100.0 - x, 1.0, 0.0));
        }
        let trial = session.store_profile("app", "exp", &p).unwrap();
        let server = AnalysisServer::start(conn, 1).unwrap();
        let client = ExplorerClient::connect(&server);
        match client.correlate(trial, "f") {
            Response::Correlation {
                metrics, matrix, ..
            } => {
                let ai = metrics.iter().position(|m| m == "A").unwrap();
                let bi = metrics.iter().position(|m| m == "B").unwrap();
                let ci = metrics.iter().position(|m| m == "C").unwrap();
                assert!((matrix[ai][bi] - 1.0).abs() < 1e-9);
                assert!((matrix[ai][ci] + 1.0).abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn errors_are_responses_not_crashes() {
        let (conn, trial) = setup();
        let server = AnalysisServer::start(conn, 1).unwrap();
        let client = ExplorerClient::connect(&server);
        assert!(matches!(client.cluster(999, "TIME", 4), Response::Error(_)));
        assert!(matches!(
            client.cluster(trial, "NO_SUCH_METRIC", 4),
            Response::Error(_)
        ));
        assert!(matches!(client.fetch(12345), Response::Error(_)));
        server.shutdown();
    }

    #[test]
    fn hierarchical_method_agrees_with_kmeans_on_separable_data() {
        let (conn, trial) = setup();
        let server = AnalysisServer::start(conn, 1).unwrap();
        let client = ExplorerClient::connect(&server);
        let km = match client.cluster(trial, "TIME", 4) {
            Response::Clustering { assignments, .. } => assignments,
            other => panic!("{other:?}"),
        };
        let hc = match client.request(Request::ClusterTrial {
            trial_id: trial,
            features: FeatureSpace::EventsOfMetric("TIME".into()),
            k: None,
            max_k: 4,
            pca_components: 0,
            method: ClusterMethod::Hierarchical,
        }) {
            Response::Clustering {
                k,
                assignments,
                settings_id,
                ..
            } => {
                assert_eq!(k, 2);
                // persisted under the hierarchical method name
                match client.fetch(settings_id) {
                    Response::Stored { method, .. } => assert_eq!(method, "hierarchical"),
                    other => panic!("{other:?}"),
                }
                assignments
            }
            other => panic!("{other:?}"),
        };
        assert_eq!(
            perfdmf_analysis::adjusted_rand_index(&km, &hc),
            1.0,
            "both methods must find the same bimodal split"
        );
        server.shutdown();
    }

    #[test]
    fn server_side_speedup_study() {
        use perfdmf_workload::Evh1Model;
        let conn = Connection::open_in_memory();
        let mut session = DatabaseSession::new(conn.clone()).unwrap();
        let model = Evh1Model::default_mix(4);
        for p in [1usize, 2, 4, 8] {
            session
                .store_profile("evh1", "scaling", &model.generate(p))
                .unwrap();
        }
        let server = AnalysisServer::start(conn, 1).unwrap();
        let client = ExplorerClient::connect(&server);
        match client.speedup(1, "GET_TIME_OF_DAY") {
            Response::Speedup {
                application,
                amdahl_serial_fraction,
                routines,
            } => {
                assert_eq!(application.len(), 4);
                let (p, s, _) = application[3];
                assert_eq!(p, 8);
                assert!(s > 4.0 && s < 8.0, "speedup {s}");
                assert!(amdahl_serial_fraction.is_some());
                assert!(routines.iter().any(|(n, ..)| n == "init_grid"));
            }
            other => panic!("{other:?}"),
        }
        // too-small experiments error as responses
        assert!(matches!(
            client.speedup(999, "GET_TIME_OF_DAY"),
            Response::Error(_)
        ));
        server.shutdown();
    }

    #[test]
    fn regression_scan_flags_history_changes() {
        use perfdmf_profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId};
        let conn = Connection::open_in_memory();
        let mut session = DatabaseSession::new(conn.clone()).unwrap();
        // three "nightly" trials; the third slows one routine down 50%
        for (run, slow) in [(1, 1.0), (2, 1.0), (3, 1.5)] {
            let mut p = Profile::new(format!("nightly-{run}"));
            let m = p.add_metric(Metric::measured("TIME"));
            let stable = p.add_event(IntervalEvent::ungrouped("stable"));
            let hot = p.add_event(IntervalEvent::ungrouped("hot_loop"));
            p.add_thread(ThreadId::ZERO);
            p.set_interval(
                stable,
                ThreadId::ZERO,
                m,
                IntervalData::new(10.0, 10.0, 1.0, 0.0),
            );
            p.set_interval(
                hot,
                ThreadId::ZERO,
                m,
                IntervalData::new(20.0 * slow, 20.0 * slow, 1.0, 0.0),
            );
            session.store_profile("app", "nightly", &p).unwrap();
        }
        let server = AnalysisServer::start(conn, 1).unwrap();
        let client = ExplorerClient::connect(&server);
        match client.regressions(1, 0.10) {
            Response::Regressions {
                findings,
                pairs_compared,
            } => {
                assert_eq!(pairs_compared, 2);
                assert_eq!(findings.len(), 1, "{findings:?}");
                let (older, newer, event, metric, rel) = &findings[0];
                assert_eq!(*older, 2);
                assert_eq!(*newer, 3);
                assert_eq!(event, "hot_loop");
                assert_eq!(metric, "TIME");
                assert!((rel - 0.5).abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn watchdog_flags_two_x_slowdown_against_archive_baseline() {
        let conn = Connection::open_in_memory();
        let mut session = DatabaseSession::new(conn.clone()).unwrap();
        // Four baseline trials with small jitter, then a candidate whose
        // hot routine doubled.
        let mut candidate_id = 0;
        for (run, slow) in [(1, 0.98), (2, 1.0), (3, 1.01), (4, 1.02), (5, 2.0)] {
            let mut p = Profile::new(format!("watchdog-{run}"));
            let m = p.add_metric(Metric::measured("TIME"));
            let stable = p.add_event(IntervalEvent::ungrouped("stable"));
            let hot = p.add_event(IntervalEvent::ungrouped("hot_loop"));
            p.add_thread(ThreadId::ZERO);
            p.set_interval(
                stable,
                ThreadId::ZERO,
                m,
                IntervalData::new(10.0, 10.0, 1.0, 0.0),
            );
            p.set_interval(
                hot,
                ThreadId::ZERO,
                m,
                IntervalData::new(20.0 * slow, 20.0 * slow, 1.0, 0.0),
            );
            candidate_id = session.store_profile("app", "watchdog", &p).unwrap();
        }
        let server = AnalysisServer::start(conn.clone(), 1).unwrap();
        let client = ExplorerClient::connect(&server);
        match client.watchdog(1, candidate_id, "TIME", 1.25) {
            Response::Watchdog {
                baseline_trials,
                findings,
            } => {
                assert_eq!(baseline_trials, 4);
                assert_eq!(findings.len(), 1, "{findings:?}");
                let (event, baseline_mean, candidate, ratio) = &findings[0];
                assert_eq!(event, "hot_loop");
                assert!((baseline_mean - 20.0).abs() < 0.5);
                assert!((candidate - 40.0).abs() < 1e-9);
                assert!((ratio - 2.0).abs() < 0.05);
            }
            other => panic!("{other:?}"),
        }
        // The finding is queryable through the system-table surface.
        let logged = conn
            .query(
                "SELECT context, event, ratio FROM perfdmf_regressions WHERE event = 'hot_loop'",
                &[],
            )
            .unwrap();
        assert!(
            logged.rows.iter().any(|r| {
                matches!(&r[0], perfdmf_db::Value::Text(c)
                    if c.as_ref().contains(&format!("trial {candidate_id}")))
            }),
            "{logged:?}"
        );
        server.shutdown();
    }

    /// Current value of a telemetry counter (0 if never incremented).
    /// Tests assert on before/after deltas, never absolute values, so
    /// they stay correct when other tests run in parallel.
    fn counter_value(name: &str) -> u64 {
        perfdmf_telemetry::snapshot()
            .counter(name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    #[test]
    fn panicking_request_is_isolated_and_server_keeps_serving() {
        let (conn, trial) = setup();
        let server = AnalysisServer::start(conn, 1).unwrap();
        let client = ExplorerClient::connect(&server);
        let restarts_before = counter_value("explorer.worker_restarts");
        match client.request(Request::InjectPanic("boom".into())) {
            Response::Failed { reason, retryable } => {
                assert!(reason.contains("panicked"), "{reason}");
                assert!(reason.contains("boom"), "{reason}");
                assert!(!retryable, "a deterministic panic is not retryable");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        // The single worker restarted and still serves real work.
        match client.cluster(trial, "TIME", 4) {
            Response::Clustering { k, .. } => assert_eq!(k, 2),
            other => panic!("server did not survive the panic: {other:?}"),
        }
        assert!(
            counter_value("explorer.worker_restarts") > restarts_before,
            "worker restart must be visible in telemetry"
        );
        server.shutdown();
    }

    #[test]
    fn saturated_queue_sheds_requests_as_overloaded() {
        let (conn, _trial) = setup();
        let server = AnalysisServer::start_with_capacity(conn, 1, 1).unwrap();
        let client = ExplorerClient::connect(&server);
        let shed_before = counter_value("explorer.sheds");
        // Occupy the single worker, then fill the single queue slot.
        let busy = {
            let c = client.clone();
            std::thread::spawn(move || c.request(Request::Stall { millis: 400 }))
        };
        std::thread::sleep(std::time::Duration::from_millis(100));
        let queued = {
            let c = client.clone();
            std::thread::spawn(move || c.request(Request::Stall { millis: 1 }))
        };
        std::thread::sleep(std::time::Duration::from_millis(100));
        // Worker busy + queue full: this submission must be shed, not block.
        match client.request(Request::FetchResult { settings_id: 1 }) {
            Response::Overloaded => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert!(
            counter_value("explorer.sheds") > shed_before,
            "shed must be visible in telemetry"
        );
        // The accepted requests still complete and the server keeps serving.
        assert!(matches!(
            busy.join().unwrap(),
            Response::Stored { .. } | Response::Error(_)
        ));
        assert!(matches!(
            queued.join().unwrap(),
            Response::Stored { .. } | Response::Error(_)
        ));
        assert!(matches!(
            client.request(Request::FetchResult { settings_id: 1 }),
            Response::Error(_)
        ));
        server.shutdown();
    }

    #[test]
    fn deadline_expiry_returns_retryable_failure_not_a_hang() {
        let (conn, _trial) = setup();
        let server = AnalysisServer::start(conn, 1).unwrap();
        let client = ExplorerClient::connect(&server);
        let timeouts_before = counter_value("explorer.timeouts");
        // Occupy the single worker so the next request waits in the queue
        // past its deadline.
        let busy = {
            let c = client.clone();
            std::thread::spawn(move || c.request(Request::Stall { millis: 400 }))
        };
        std::thread::sleep(std::time::Duration::from_millis(100));
        let started = std::time::Instant::now();
        let response = client.request_with_deadline(
            Request::FetchResult { settings_id: 1 },
            std::time::Duration::from_millis(100),
        );
        match response {
            Response::Failed { retryable, .. } => assert!(retryable),
            other => panic!("expected retryable Failed, got {other:?}"),
        }
        assert!(
            started.elapsed() < std::time::Duration::from_millis(350),
            "the client must give up at its deadline, not wait for the worker"
        );
        assert!(
            counter_value("explorer.timeouts") > timeouts_before,
            "timeout must be visible in telemetry"
        );
        busy.join().unwrap();
        server.shutdown();
    }

    #[test]
    fn retry_policy_rides_out_transient_overload() {
        let (conn, _trial) = setup();
        let server = AnalysisServer::start_with_capacity(conn, 1, 1).unwrap();
        let client = ExplorerClient::connect(&server);
        let retries_before = counter_value("explorer.retries");
        // Worker busy + queue full for ~400ms: the first attempt is shed,
        // backoff retries land after the stall drains.
        let busy = {
            let c = client.clone();
            std::thread::spawn(move || c.request(Request::Stall { millis: 400 }))
        };
        std::thread::sleep(std::time::Duration::from_millis(100));
        let queued = {
            let c = client.clone();
            std::thread::spawn(move || c.request(Request::Stall { millis: 1 }))
        };
        std::thread::sleep(std::time::Duration::from_millis(100));
        let response = client.request_with_retry(
            Request::FetchResult {
                settings_id: 424242,
            },
            None,
            RetryPolicy {
                max_retries: 20,
                base_delay: std::time::Duration::from_millis(50),
                max_delay: std::time::Duration::from_millis(200),
                jitter: std::time::Duration::from_millis(10),
            },
        );
        assert!(
            matches!(response, Response::Error(_)),
            "retries should eventually get through to a served reply, got {response:?}"
        );
        assert!(
            counter_value("explorer.retries") > retries_before,
            "retries must be visible in telemetry"
        );
        busy.join().unwrap();
        queued.join().unwrap();
        server.shutdown();
    }

    #[test]
    fn retry_backoff_jitter_is_seed_deterministic() {
        use std::time::Duration;
        let policy = RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
            jitter: Duration::from_millis(20),
        };
        // Replay: the whole schedule is a pure function of
        // (seed, key, attempt), so a failing chaos run re-executes with
        // identical backoff.
        for attempt in 0..8 {
            for key in [0u64, 1, 42, u64::MAX] {
                let a = policy.delay_seeded(attempt, key, 7);
                let b = policy.delay_seeded(attempt, key, 7);
                assert_eq!(a, b, "attempt {attempt} key {key}");
                // Jitter is additive and bounded: exp <= delay <= exp + jitter.
                let exp = (policy.base_delay * (1u32 << attempt.min(16))).min(policy.max_delay);
                assert!(a >= exp && a <= exp + policy.jitter, "{a:?} vs {exp:?}");
            }
        }
        // Different seeds (or keys) decorrelate the schedules: at least
        // one attempt must differ.
        assert!(
            (0..8).any(|n| policy.delay_seeded(n, 42, 7) != policy.delay_seeded(n, 42, 8)),
            "seed must influence the jitter"
        );
        assert!(
            (0..8).any(|n| policy.delay_seeded(n, 1, 7) != policy.delay_seeded(n, 2, 7)),
            "key must influence the jitter"
        );
        // Zero jitter degrades to the pure exponential schedule.
        let bare = RetryPolicy {
            jitter: Duration::ZERO,
            ..policy
        };
        assert_eq!(bare.delay_seeded(2, 9, 1), Duration::from_millis(40));
    }

    #[test]
    fn ping_answers_pong() {
        let (conn, _trial) = setup();
        let server = AnalysisServer::start(conn, 1).unwrap();
        let client = ExplorerClient::connect(&server);
        assert_eq!(client.request(Request::Ping), Response::Pong);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let (conn, trial) = setup();
        let server = AnalysisServer::start(conn, 4).unwrap();
        let client = ExplorerClient::connect(&server);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = client.clone();
            handles.push(std::thread::spawn(move || {
                match c.cluster(trial, "TIME", 4) {
                    Response::Clustering { k, .. } => k,
                    other => panic!("{other:?}"),
                }
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 2);
        }
        server.shutdown();
    }
}
