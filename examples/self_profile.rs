//! Self-profiling: PerfDMF measuring PerfDMF.
//!
//! 1. Run a normal workload — import a synthetic TAU trial, store it,
//!    query SQL aggregates — with telemetry collecting and an
//!    aggressive slow-query threshold feeding the event log.
//! 2. Print the live instruments (latency quantiles, row counters) and
//!    the captured slow-query events.
//! 3. Export the registry as a PerfDMF profile, store it as a trial in
//!    the same database, and read it back through the `DataSession`
//!    API — the framework's own behavior browsed with the framework.
//!
//! Run with: `cargo run --example self_profile`

use perfdmf::core::DatabaseSession;
use perfdmf::db::Connection;
use perfdmf::import::load_path;
use perfdmf::profile::ThreadId;
use perfdmf::telemetry::{self, RingBufferSink};
use perfdmf::workload::{write_tau_directory, Evh1Model};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // --- 1. instrument an ordinary run ---
    let sink = Arc::new(RingBufferSink::new(256));
    telemetry::install_sink(sink.clone());
    // Log any statement slower than 100µs (the default is 50ms).
    perfdmf::db::set_slow_query_threshold(Duration::from_micros(100));

    let dir = std::env::temp_dir().join(format!("perfdmf_self_profile_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let run = Evh1Model::default_mix(7).generate(16);
    write_tau_directory(&run, &dir).expect("write TAU profiles");

    let profile = load_path(&dir).expect("import");
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn).expect("schema");
    let trial = session
        .store_profile("evh1", "instrumented-run", &profile)
        .expect("store");
    session.set_trial(trial);
    let aggs = session.event_aggregates("GET_TIME_OF_DAY").expect("aggs");
    println!(
        "workload done: trial {trial} stored, {} event aggregates computed\n",
        aggs.len()
    );

    // --- 2. what did the framework observe about itself? ---
    let snap = telemetry::snapshot();
    println!(
        "instruments ({} counters, {} histograms), selected:",
        snap.counters.len(),
        snap.histograms.len()
    );
    for name in [
        "db.statements",
        "db.rows_scanned",
        "import.bytes_read",
        "session.rows_stored",
    ] {
        if let Some(c) = snap.counter(name) {
            println!("  {:<28} {}", c.name, c.value);
        }
    }
    for name in [
        "db.statement_latency_ns",
        "import.parse_ns.tau",
        "session.store_profile",
    ] {
        if let Some(h) = snap.histogram(name) {
            println!(
                "  {:<28} n={} mean={:.0}ns p50<={}ns p95<={}ns p99<={}ns",
                h.name,
                h.count,
                h.mean().unwrap_or(0.0),
                h.quantile(0.5).unwrap_or(0),
                h.quantile(0.95).unwrap_or(0),
                h.quantile(0.99).unwrap_or(0)
            );
        }
    }
    let slow = sink.events();
    println!("\nslow-query log captured {} events; slowest:", slow.len());
    if let Some(e) = slow.iter().max_by_key(|e| match e.get("elapsed_ns") {
        Some(&telemetry::FieldValue::U64(ns)) => ns,
        _ => 0,
    }) {
        println!("  {}", e.to_text());
    }

    // --- 3. close the loop: the telemetry becomes a trial ---
    let self_profile = telemetry::snapshot_to_profile();
    let self_trial = session
        .store_profile("perfdmf", "self-profiling", &self_profile)
        .expect("store self-profile");
    session.set_trial(self_trial);
    let loaded = session.load_profile().expect("load self-profile");
    let metric = loaded
        .find_metric(telemetry::snapshot::TELEMETRY_METRIC)
        .expect("telemetry metric");
    println!(
        "\nself-profile stored as trial {self_trial}: {} interval events, {} atomic events",
        loaded.events().len(),
        loaded.atomic_events().len()
    );
    let mut spans: Vec<_> = loaded
        .events()
        .iter()
        .enumerate()
        .filter_map(|(i, e)| {
            let d = loaded.interval(perfdmf::profile::EventId(i), ThreadId::ZERO, metric)?;
            Some((e.name.clone(), d.inclusive()?, d.calls()?))
        })
        .collect();
    spans.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top spans by total time:");
    for (name, total_ns, calls) in spans.iter().take(5) {
        println!("  {:<28} {:>12.0}ns over {} calls", name, total_ns, calls);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
