/root/repo/target/debug/deps/perfdmf_core-d9b6f1be595a4787.d: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/objects.rs crates/core/src/schema.rs crates/core/src/session.rs crates/core/src/upload.rs

/root/repo/target/debug/deps/perfdmf_core-d9b6f1be595a4787: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/objects.rs crates/core/src/schema.rs crates/core/src/session.rs crates/core/src/upload.rs

crates/core/src/lib.rs:
crates/core/src/archive.rs:
crates/core/src/objects.rs:
crates/core/src/schema.rs:
crates/core/src/session.rs:
crates/core/src/upload.rs:
