//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * secondary indexes vs full scans (index pushdown),
//! * prepared statements vs per-row parsing (the bulk-load fast path),
//! * transactions vs autocommit for bulk inserts,
//! * hash join vs nested-loop join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfdmf_db::{Connection, Value};

fn table_with_rows(n: usize, indexed: bool) -> Connection {
    let conn = Connection::open_in_memory();
    conn.execute(
        "CREATE TABLE m (id INTEGER PRIMARY KEY AUTO_INCREMENT, k INTEGER, v DOUBLE)",
        &[],
    )
    .expect("ddl");
    let ins = conn
        .prepare("INSERT INTO m (k, v) VALUES (?, ?)")
        .expect("prep");
    conn.transaction(|tx| {
        for i in 0..n {
            tx.execute_prepared(
                &ins,
                &[Value::Int((i % 512) as i64), Value::Float(i as f64)],
            )?;
        }
        Ok(())
    })
    .expect("fill");
    if indexed {
        conn.execute("CREATE INDEX ix_k ON m (k)", &[])
            .expect("index");
    }
    conn
}

fn bench_index_vs_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_index_pushdown");
    group.sample_size(30);
    for n in [10_000usize, 100_000] {
        for (label, indexed) in [("scan", false), ("indexed", true)] {
            let conn = table_with_rows(n, indexed);
            group.bench_with_input(BenchmarkId::new(label, n), &(), |b, _| {
                b.iter(|| {
                    conn.query("SELECT v FROM m WHERE k = ?", &[Value::Int(7)])
                        .expect("query")
                });
            });
        }
    }
    group.finish();
}

fn bench_prepared_vs_parsed(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_prepared_statements");
    group.sample_size(10);
    const ROWS: usize = 5_000;
    group.bench_function("parse_per_row", |b| {
        b.iter(|| {
            let conn = Connection::open_in_memory();
            conn.execute("CREATE TABLE t (a INTEGER, b DOUBLE)", &[])
                .unwrap();
            conn.transaction(|tx| {
                for i in 0..ROWS {
                    tx.execute(
                        "INSERT INTO t (a, b) VALUES (?, ?)",
                        &[Value::Int(i as i64), Value::Float(i as f64)],
                    )?;
                }
                Ok(())
            })
            .unwrap();
        });
    });
    group.bench_function("prepared_once", |b| {
        b.iter(|| {
            let conn = Connection::open_in_memory();
            conn.execute("CREATE TABLE t (a INTEGER, b DOUBLE)", &[])
                .unwrap();
            let ins = conn.prepare("INSERT INTO t (a, b) VALUES (?, ?)").unwrap();
            conn.transaction(|tx| {
                for i in 0..ROWS {
                    tx.execute_prepared(&ins, &[Value::Int(i as i64), Value::Float(i as f64)])?;
                }
                Ok(())
            })
            .unwrap();
        });
    });
    group.finish();
}

fn bench_txn_vs_autocommit(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_transaction_batching");
    group.sample_size(10);
    const ROWS: usize = 2_000;
    group.bench_function("autocommit_each_row", |b| {
        b.iter(|| {
            let conn = Connection::open_in_memory();
            conn.execute("CREATE TABLE t (a INTEGER)", &[]).unwrap();
            let ins = conn.prepare("INSERT INTO t (a) VALUES (?)").unwrap();
            for i in 0..ROWS {
                conn.execute_prepared(&ins, &[Value::Int(i as i64)])
                    .unwrap();
            }
        });
    });
    group.bench_function("one_transaction", |b| {
        b.iter(|| {
            let conn = Connection::open_in_memory();
            conn.execute("CREATE TABLE t (a INTEGER)", &[]).unwrap();
            let ins = conn.prepare("INSERT INTO t (a) VALUES (?)").unwrap();
            conn.transaction(|tx| {
                for i in 0..ROWS {
                    tx.execute_prepared(&ins, &[Value::Int(i as i64)])?;
                }
                Ok(())
            })
            .unwrap();
        });
    });
    group.finish();
}

fn bench_hash_vs_nested_join(c: &mut Criterion) {
    let conn = Connection::open_in_memory();
    conn.execute("CREATE TABLE l (k INTEGER)", &[]).unwrap();
    conn.execute("CREATE TABLE r (k INTEGER)", &[]).unwrap();
    let il = conn.prepare("INSERT INTO l VALUES (?)").unwrap();
    let ir = conn.prepare("INSERT INTO r VALUES (?)").unwrap();
    conn.transaction(|tx| {
        for i in 0..2_000 {
            tx.execute_prepared(&il, &[Value::Int(i % 101)])?;
            tx.execute_prepared(&ir, &[Value::Int(i % 101)])?;
        }
        Ok(())
    })
    .unwrap();
    let mut group = c.benchmark_group("ablation_join_strategy");
    group.sample_size(10);
    group.bench_function("hash_join_equi", |b| {
        b.iter(|| {
            conn.query("SELECT COUNT(*) FROM l JOIN r ON l.k = r.k", &[])
                .unwrap()
        });
    });
    group.bench_function("nested_loop_nonequi_form", |b| {
        b.iter(|| {
            conn.query("SELECT COUNT(*) FROM l JOIN r ON l.k - r.k = 0", &[])
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_index_vs_scan,
    bench_prepared_vs_parsed,
    bench_txn_vs_autocommit,
    bench_hash_vs_nested_join
);
criterion_main!(benches);
