//! Golden importer corpus.
//!
//! One checked-in fixture per supported profile format (gprof, TAU,
//! dynaprof, mpiP, HPMtoolkit, psrun) under `tests/fixtures/`, each with
//! a golden snapshot of the fully-parsed [`Profile`]. Any change to a
//! parser that alters what a fixture parses to — events, threads,
//! metrics, values, derived percentages, ordering — fails against the
//! snapshot.
//!
//! Regenerate snapshots after an *intended* parser change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_corpus
//! ```
//!
//! then review the diff like any other code change.

use std::path::{Path, PathBuf};

use perfdmf_import::{dynaprof, gprof, hpm, mpip, psrun, tau};
use perfdmf_profile::{MetricId, Profile};

fn fixture(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel)
}

/// Format a value for the snapshot: fixed precision so derived floats
/// render stably, NaN (the UNDEFINED sentinel) as `-`.
fn num(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.6}")
    }
}

/// Render a profile as a stable, human-reviewable text snapshot.
///
/// Everything observable is included — names, groups, ordering, raw and
/// derived interval fields, atomic summaries — so the snapshot pins both
/// parser output *and* the deterministic ordering the parallel import
/// path promises.
fn snapshot(profile: &Profile) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "profile {:?} format={:?}\n",
        profile.name, profile.source_format
    ));
    let threads: Vec<String> = profile.threads().iter().map(|t| t.to_string()).collect();
    out.push_str(&format!("threads: [{}]\n", threads.join(", ")));
    out.push_str("metrics:\n");
    for m in profile.metrics() {
        out.push_str(&format!("  {}\n", m.name));
    }
    out.push_str("interval events:\n");
    for (eid, event) in profile.events().iter().enumerate() {
        out.push_str(&format!("  {:?} group={:?}\n", event.name, event.group));
        for (mi, metric) in profile.metrics().iter().enumerate() {
            for thread in profile.threads() {
                let Some(d) =
                    profile.interval(perfdmf_profile::EventId(eid), *thread, MetricId(mi))
                else {
                    continue;
                };
                out.push_str(&format!(
                    "    {} {}: incl={} excl={} incl%={} excl%={} incl/call={} calls={} subrs={}\n",
                    metric.name,
                    thread,
                    num(d.inclusive),
                    num(d.exclusive),
                    num(d.inclusive_percent),
                    num(d.exclusive_percent),
                    num(d.inclusive_per_call),
                    num(d.calls),
                    num(d.subroutines),
                ));
            }
        }
    }
    out.push_str("atomic events:\n");
    for (aid, event) in profile.atomic_events().iter().enumerate() {
        out.push_str(&format!("  {:?}\n", event.name));
        for thread in profile.threads() {
            let Some(d) = profile.atomic(perfdmf_profile::AtomicEventId(aid), *thread) else {
                continue;
            };
            out.push_str(&format!(
                "    {}: count={} min={} max={} mean={} stddev={}\n",
                thread,
                d.count,
                num(d.min),
                num(d.max),
                num(d.mean),
                num(d.stddev().unwrap_or(f64::NAN)),
            ));
        }
    }
    out
}

/// Compare (or, under `UPDATE_GOLDEN=1`, rewrite) a snapshot file.
fn assert_golden(name: &str, rendered: &str) {
    let path = fixture(&format!("golden/{name}.snap"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "parsed profile diverged from golden snapshot {} \
         (if the change is intended, regenerate with UPDATE_GOLDEN=1 and review the diff)",
        path.display()
    );
}

#[test]
fn gprof_golden() {
    let profile = gprof::load_gprof_file(&fixture("gprof/sweep3d.gprof.txt")).unwrap();
    assert_golden("gprof", &snapshot(&profile));
}

#[test]
fn tau_golden() {
    let profile = tau::load_tau_directory(&fixture("tau")).unwrap();
    assert_golden("tau", &snapshot(&profile));
}

/// The TAU fixture parses identically through the serial and the forced
/// parallel directory-import path.
#[test]
fn tau_golden_parallel_matches() {
    let serial = {
        let _serial = perfdmf_pool::override_for_thread(1, 1);
        tau::load_tau_directory(&fixture("tau")).unwrap()
    };
    let parallel = {
        let _parallel = perfdmf_pool::override_for_thread(4, 1);
        tau::load_tau_directory(&fixture("tau")).unwrap()
    };
    assert_eq!(snapshot(&serial), snapshot(&parallel));
}

#[test]
fn dynaprof_golden() {
    let profile = dynaprof::load_dynaprof_file(&fixture("dynaprof/papiprobe.t0.dynaprof")).unwrap();
    assert_golden("dynaprof", &snapshot(&profile));
}

#[test]
fn mpip_golden() {
    let profile = mpip::load_mpip_file(&fixture("mpip/sweep3d.4.mpip.txt")).unwrap();
    assert_golden("mpip", &snapshot(&profile));
}

#[test]
fn hpm_golden() {
    let profile = hpm::load_hpm_directory(&fixture("hpm")).unwrap();
    assert_golden("hpm", &snapshot(&profile));
}

#[test]
fn psrun_golden() {
    let profile = psrun::load_psrun_file(&fixture("psrun/sppm.0.xml")).unwrap();
    assert_golden("psrun", &snapshot(&profile));
}
