/root/repo/target/debug/deps/prop_roundtrip-2137a3e3cfcdb886.d: crates/workload/tests/prop_roundtrip.rs

/root/repo/target/debug/deps/prop_roundtrip-2137a3e3cfcdb886: crates/workload/tests/prop_roundtrip.rs

crates/workload/tests/prop_roundtrip.rs:
