//! Stress tests: sustained mixed workloads, checkpoint cycling, and
//! reader/writer contention at PerfDMF-archive scale.

use perfdmf_db::{Connection, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn schema(conn: &Connection) {
    conn.execute(
        "CREATE TABLE samples (
            id INTEGER PRIMARY KEY AUTO_INCREMENT,
            series INTEGER NOT NULL,
            v DOUBLE NOT NULL)",
        &[],
    )
    .unwrap();
    conn.execute("CREATE INDEX ix_series ON samples (series)", &[])
        .unwrap();
}

#[test]
fn sustained_mixed_workload() {
    let conn = Connection::open_in_memory();
    schema(&conn);
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // writer: batches of inserts + occasional updates/deletes
    {
        let conn = conn.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let ins = conn
                .prepare("INSERT INTO samples (series, v) VALUES (?, ?)")
                .unwrap();
            let mut round = 0i64;
            while !stop.load(Ordering::Relaxed) {
                conn.transaction(|tx| {
                    for i in 0..50 {
                        tx.execute_prepared(
                            &ins,
                            &[Value::Int((round + i) % 16), Value::Float(round as f64)],
                        )?;
                    }
                    Ok(())
                })
                .unwrap();
                if round % 5 == 0 {
                    conn.update(
                        "UPDATE samples SET v = v + 1 WHERE series = ?",
                        &[Value::Int(round % 16)],
                    )
                    .unwrap();
                }
                if round % 7 == 0 {
                    conn.update(
                        "DELETE FROM samples WHERE series = ? AND v < ?",
                        &[Value::Int(round % 16), Value::Float(round as f64 / 2.0)],
                    )
                    .unwrap();
                }
                round += 1;
                if round >= 60 {
                    break;
                }
            }
        }));
    }
    // readers: aggregates + indexed point queries must never error
    for r in 0..3 {
        let conn = conn.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut iterations = 0;
            while !stop.load(Ordering::Relaxed) && iterations < 200 {
                let rs = conn
                    .query(
                        "SELECT series, COUNT(*), AVG(v) FROM samples GROUP BY series",
                        &[],
                    )
                    .unwrap();
                assert!(rs.rows.len() <= 16);
                let _ = conn
                    .query(
                        "SELECT COUNT(*) FROM samples WHERE series = ?",
                        &[Value::Int(r)],
                    )
                    .unwrap();
                iterations += 1;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
        stop.store(true, Ordering::Relaxed);
    }
    // final consistency: index agrees with scan on every series
    for s in 0..16 {
        let by_index: i64 = conn
            .query_scalar(
                "SELECT COUNT(*) FROM samples WHERE series = ?",
                &[Value::Int(s)],
            )
            .unwrap()
            .as_int()
            .unwrap();
        let by_scan: i64 = conn
            .query_scalar(
                "SELECT COUNT(*) FROM samples WHERE series + 0 = ?",
                &[Value::Int(s)],
            )
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(by_index, by_scan, "series {s}");
    }
}

#[test]
fn checkpoint_cycling_under_writes() {
    let dir = std::env::temp_dir().join(format!(
        "pdmf_stress_ckpt_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut expected = 0i64;
    {
        let conn = Connection::open(&dir).unwrap();
        schema(&conn);
        let ins = conn
            .prepare("INSERT INTO samples (series, v) VALUES (?, ?)")
            .unwrap();
        for cycle in 0..8 {
            conn.transaction(|tx| {
                for i in 0..100 {
                    tx.execute_prepared(&ins, &[Value::Int(i % 4), Value::Float(cycle as f64)])?;
                }
                Ok(())
            })
            .unwrap();
            expected += 100;
            if cycle % 2 == 0 {
                conn.checkpoint().unwrap();
            }
        }
    }
    // several reopen cycles: every committed row survives each time
    for _ in 0..3 {
        let conn = Connection::open(&dir).unwrap();
        let n: i64 = conn
            .query_scalar("SELECT COUNT(*) FROM samples", &[])
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(n, expected);
        // index functional after recovery
        let s0: i64 = conn
            .query_scalar("SELECT COUNT(*) FROM samples WHERE series = 0", &[])
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(s0, expected / 4);
        conn.insert("INSERT INTO samples (series, v) VALUES (0, -1.0)", &[])
            .unwrap();
        conn.update("DELETE FROM samples WHERE v = -1.0", &[])
            .unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wide_rows_and_long_strings() {
    let conn = Connection::open_in_memory();
    // 24-column table with long text payloads
    let cols: Vec<String> = (0..24).map(|i| format!("c{i} TEXT")).collect();
    conn.execute(
        &format!(
            "CREATE TABLE wide (id INTEGER PRIMARY KEY AUTO_INCREMENT, {})",
            cols.join(", ")
        ),
        &[],
    )
    .unwrap();
    let placeholders = vec!["?"; 24].join(", ");
    let names: Vec<String> = (0..24).map(|i| format!("c{i}")).collect();
    let ins = conn
        .prepare(&format!(
            "INSERT INTO wide ({}) VALUES ({placeholders})",
            names.join(", ")
        ))
        .unwrap();
    let long = "x".repeat(4096);
    conn.transaction(|tx| {
        for i in 0..200 {
            let vals: Vec<Value> = (0..24)
                .map(|c| Value::Text(format!("{long}-{i}-{c}").into()))
                .collect();
            tx.execute_prepared(&ins, &vals)?;
        }
        Ok(())
    })
    .unwrap();
    let rs = conn
        .query("SELECT c23 FROM wide WHERE id = 200", &[])
        .unwrap();
    assert!(rs.scalar().unwrap().as_text().unwrap().ends_with("-199-23"));
    assert_eq!(conn.row_count("wide").unwrap(), 200);
    // projection pruning path with a join against itself via ids
    let n: i64 = conn
        .query_scalar(
            "SELECT COUNT(*) FROM wide a JOIN wide b ON a.id = b.id",
            &[],
        )
        .unwrap()
        .as_int()
        .unwrap();
    assert_eq!(n, 200);
}
