/root/repo/target/debug/deps/perfdmf_telemetry-bd3c1fa05ca66d3f.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libperfdmf_telemetry-bd3c1fa05ca66d3f.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
