//! Concurrency stress: readers race a bulk-import writer and must only
//! ever observe statement-atomic snapshots.
//!
//! The writer commits zero-sum batches of [`BATCH`] rows each via the
//! group-commit `bulk_insert` path. Because every batch sums to zero on
//! `v` and has exactly `BATCH` members, any reader that catches a batch
//! half-applied would see `COUNT(*) % BATCH != 0`, `SUM(v) != 0`, or a
//! group with a partial member count — all of which the invariant checks
//! reject. Readers alternate between the engine's serial and forced
//! parallel execution paths, so the partitioned scan/aggregate code is
//! raced against the writer too.
//!
//! A second test replays the same workload through a `FaultVfs` with a
//! seeded schedule of injected WAL write/fsync failures (override the
//! schedule seed with `RUST_SEED`): failed batches must roll back
//! whole, and the invariants must hold both while racing and after a
//! clean reopen of the database directory.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use perfdmf_db::{Connection, Durability, FaultKind, FaultPlan, FaultVfs, Value};
use perfdmf_pool as pool;

const BATCH: usize = 8;
const BATCHES: i64 = 60;
/// Zero-sum per-batch values: [-7, -5, -3, -1, 1, 3, 5, 7].
const VALUES: [i64; BATCH] = [-7, -5, -3, -1, 1, 3, 5, 7];

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "pdmf_stress_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn batch_rows(batch: i64) -> Vec<Vec<Value>> {
    VALUES
        .iter()
        .map(|v| vec![Value::Int(batch), Value::Int(*v)])
        .collect()
}

/// One reader pass over the shared table; every query runs under a
/// single read lock, so each result must be a statement-atomic snapshot.
fn check_invariants(conn: &Connection, context: &str) {
    let totals = conn
        .query("SELECT COUNT(*), SUM(v) FROM t", &[])
        .expect("totals query");
    let row = &totals.rows[0];
    let count = match &row[0] {
        Value::Int(n) => *n,
        other => panic!("{context}: COUNT(*) returned {other:?}"),
    };
    assert!(
        count % BATCH as i64 == 0,
        "{context}: observed a torn batch: COUNT(*) = {count} is not a multiple of {BATCH}"
    );
    match &row[1] {
        Value::Null => assert_eq!(count, 0, "{context}: SUM NULL with {count} rows"),
        Value::Int(0) => {}
        other => panic!("{context}: zero-sum invariant broken: SUM(v) = {other:?} (count {count})"),
    }
    let partial = conn
        .query(
            &format!("SELECT batch, COUNT(*) FROM t GROUP BY batch HAVING COUNT(*) <> {BATCH}"),
            &[],
        )
        .expect("partial-batch query");
    assert!(
        partial.rows.is_empty(),
        "{context}: partially visible batches: {:?}",
        partial.rows
    );
}

/// Race `readers` checker threads against `write` until it returns the
/// number of successfully committed batches; every reader must complete
/// at least one full invariant pass while the writer is live, plus one
/// after it stops.
fn race(conn: &Connection, readers: usize, write: impl FnOnce(&Connection) -> i64) -> i64 {
    let stop = AtomicBool::new(false);
    let passes = AtomicUsize::new(0);
    let committed = std::thread::scope(|s| {
        for r in 0..readers {
            let reader = conn.clone();
            let stop = &stop;
            let passes = &passes;
            s.spawn(move || {
                // Half the readers force the parallel scan/aggregate
                // path; the rest pin the serial path.
                let _mode = if r % 2 == 0 {
                    Some(pool::override_for_thread(4, 1))
                } else {
                    None
                };
                loop {
                    let done = stop.load(Ordering::Acquire);
                    check_invariants(&reader, &format!("reader {r}"));
                    passes.fetch_add(1, Ordering::Relaxed);
                    if done {
                        break;
                    }
                }
            });
        }
        let committed = write(conn);
        stop.store(true, Ordering::Release);
        committed
    });
    assert!(passes.load(Ordering::Relaxed) >= readers);
    committed
}

#[test]
fn readers_race_bulk_import_writer() {
    let conn = Connection::open_in_memory();
    conn.execute("CREATE TABLE t (batch INTEGER, v INTEGER)", &[])
        .unwrap();

    let committed = race(&conn, 3, |conn| {
        for b in 0..BATCHES {
            conn.bulk_insert("t", &["batch", "v"], batch_rows(b))
                .expect("bulk insert");
        }
        BATCHES
    });

    check_invariants(&conn, "final");
    let count = conn.query_scalar("SELECT COUNT(*) FROM t", &[]).unwrap();
    assert_eq!(count, Value::Int(committed * BATCH as i64));
}

#[test]
fn readers_race_writer_under_injected_faults() {
    let mut seed: u64 = std::env::var("RUST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CAFE);
    let dir = tmpdir("faults");
    let vfs = FaultVfs::on_disk(FaultPlan::default());
    let conn = Connection::open_with_vfs(&dir, Arc::new(vfs.clone())).unwrap();
    conn.set_durability(Durability::Fsync);
    conn.execute("CREATE TABLE t (batch INTEGER, v INTEGER)", &[])
        .unwrap();

    let committed = race(&conn, 2, |conn| {
        let mut committed = 0i64;
        for b in 0..BATCHES {
            // Seeded fault schedule: roughly a third of the batches hit
            // an injected WAL write or fsync failure.
            let roll = splitmix64(&mut seed);
            let plan = match roll % 3 {
                0 => {
                    let kind = match roll % 2 {
                        0 => FaultKind::FailWrite,
                        _ => FaultKind::FsyncError,
                    };
                    FaultPlan::fail_at(roll % 4, kind)
                }
                _ => FaultPlan::default(),
            };
            vfs.reset(plan);
            // on Err the whole batch must have rolled back
            if conn
                .bulk_insert("t", &["batch", "v"], batch_rows(b))
                .is_ok()
            {
                committed += 1;
            }
        }
        vfs.reset(FaultPlan::default());
        committed
    });

    check_invariants(&conn, "final (faulted)");
    let count = conn.query_scalar("SELECT COUNT(*) FROM t", &[]).unwrap();
    assert_eq!(count, Value::Int(committed * BATCH as i64));
    assert!(
        committed < BATCHES,
        "fault schedule never fired; the test lost its teeth"
    );

    // A clean reopen must recover every acknowledged batch. A batch whose
    // commit *errored* may still have reached the WAL before the injected
    // fsync/flush failure (the classic unknowable-commit window), so the
    // reopened count may exceed the acknowledged count — but only by
    // whole batches, and never beyond what the writer attempted.
    drop(conn);
    let reopened = Connection::open(&dir).unwrap();
    check_invariants(&reopened, "reopened");
    let count = match reopened
        .query_scalar("SELECT COUNT(*) FROM t", &[])
        .unwrap()
    {
        Value::Int(n) => n,
        other => panic!("COUNT(*) returned {other:?}"),
    };
    assert!(
        count >= committed * BATCH as i64,
        "reopen lost acknowledged batches: {count} rows < {committed} batches"
    );
    assert!(count <= BATCHES * BATCH as i64);
    let _ = std::fs::remove_dir_all(&dir);
}
