//! Experiment E5 (paper §3.2): the flexible schema. Metadata columns can
//! be added to (or removed from) APPLICATION / EXPERIMENT / TRIAL at
//! runtime without source changes, discovered via table metadata — and
//! derived metrics can be appended to stored trials.

use perfdmf::core::{
    append_derived_metric, create_schema, DatabaseSession, FlexRow, FLEXIBLE_TABLES,
};
use perfdmf::db::{Connection, DataType, Value};
use perfdmf::profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId};

fn counter_profile() -> Profile {
    let mut p = Profile::new("t");
    let time = p.add_metric(Metric::measured("TIME"));
    let fp = p.add_metric(Metric::measured("PAPI_FP_OPS"));
    let e = p.add_event(IntervalEvent::ungrouped("kernel"));
    p.add_threads((0..4).map(|n| ThreadId::new(n, 0, 0)));
    for (i, &t) in p.threads().to_vec().iter().enumerate() {
        p.set_interval(e, t, time, IntervalData::new(2.0, 2.0, 1.0, 0.0));
        p.set_interval(
            e,
            t,
            fp,
            IntervalData::new(4e9 + i as f64 * 1e8, 4e9 + i as f64 * 1e8, 1.0, 0.0),
        );
    }
    p
}

#[test]
fn metadata_columns_added_and_discovered_at_runtime() {
    let conn = Connection::open_in_memory();
    create_schema(&conn).unwrap();
    // the paper's example columns: compiler names/versions, OS attributes
    for table in FLEXIBLE_TABLES {
        conn.execute(
            &format!("ALTER TABLE {table} ADD COLUMN os_version TEXT"),
            &[],
        )
        .unwrap();
    }
    conn.execute(
        "ALTER TABLE experiment ADD COLUMN compiler TEXT DEFAULT 'gcc'",
        &[],
    )
    .unwrap();
    conn.execute(
        "ALTER TABLE experiment ADD COLUMN compiler_version TEXT",
        &[],
    )
    .unwrap();

    // metadata discovery (the getMetaData() equivalent)
    let cols = conn.table_meta("experiment").unwrap();
    let names: Vec<&str> = cols.iter().map(|c| c.name.as_str()).collect();
    assert!(names.contains(&"compiler"));
    assert!(names.contains(&"compiler_version"));
    assert!(names.contains(&"os_version"));
    let compiler = cols.iter().find(|c| c.name == "compiler").unwrap();
    assert_eq!(compiler.ty, DataType::Text);
    assert_eq!(compiler.default, Some(Value::from("gcc")));

    // objects pick the columns up with no code changes
    let mut app = FlexRow::new("app").with_field("os_version", "AIX 5.1");
    let app_id = app.save(&conn, "application").unwrap();
    let mut exp = FlexRow::new("exp")
        .with_field("application", app_id)
        .with_field("compiler", "xlf")
        .with_field("compiler_version", "8.1.1");
    let exp_id = exp.save(&conn, "experiment").unwrap();
    let back = FlexRow::load(&conn, "experiment", exp_id).unwrap();
    assert_eq!(back.field("compiler"), Some(&Value::from("xlf")));

    // the paper: "the compiler information can be stored in the
    // APPLICATION, EXPERIMENT or TRIAL table, or not at all" — drop it.
    conn.execute("ALTER TABLE experiment DROP COLUMN compiler", &[])
        .unwrap();
    conn.execute("ALTER TABLE experiment DROP COLUMN compiler_version", &[])
        .unwrap();
    let back = FlexRow::load(&conn, "experiment", exp_id).unwrap();
    assert!(back.field("compiler").is_none());
    assert_eq!(back.name, "exp");
}

#[test]
fn queries_over_metadata_columns() {
    let conn = Connection::open_in_memory();
    create_schema(&conn).unwrap();
    conn.execute("ALTER TABLE trial ADD COLUMN problem_size INTEGER", &[])
        .unwrap();
    let mut session = DatabaseSession::new(conn.clone()).unwrap();
    for (name, size) in [("small", 64i64), ("medium", 256), ("large", 1024)] {
        let mut p = counter_profile();
        p.name = name.into();
        let trial = session.store_profile("app", "sizes", &p).unwrap();
        conn.update(
            "UPDATE trial SET problem_size = ? WHERE id = ?",
            &[Value::Int(size), Value::Int(trial)],
        )
        .unwrap();
    }
    let rs = conn
        .query(
            "SELECT name FROM trial WHERE problem_size >= 256 ORDER BY problem_size",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![vec![Value::from("medium")], vec![Value::from("large")]]
    );
}

#[test]
fn derived_metric_appended_to_stored_trial() {
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn.clone()).unwrap();
    let trial = session
        .store_profile("app", "exp", &counter_profile())
        .unwrap();
    // FLOPS = FP_OPS / TIME, computed from DB contents, written back
    let metric_id = append_derived_metric(&conn, trial, "FLOPS", "PAPI_FP_OPS / TIME").unwrap();
    assert!(metric_id > 0);
    session.set_trial(trial);
    assert_eq!(
        session.metric_list().unwrap(),
        vec!["TIME", "PAPI_FP_OPS", "FLOPS"]
    );
    session.set_metric("FLOPS");
    let p = session.load_profile().unwrap();
    let m = p.find_metric("FLOPS").unwrap();
    let e = p.find_event("kernel").unwrap();
    let d = p.interval(e, ThreadId::ZERO, m).unwrap();
    assert_eq!(d.inclusive(), Some(2e9));
    assert!(p.metric(m).derived);
    // derived metrics cannot be re-added under the same name
    assert!(append_derived_metric(&conn, trial, "FLOPS", "TIME * 1").is_err());
}

#[test]
fn schema_changes_are_transactional() {
    let conn = Connection::open_in_memory();
    create_schema(&conn).unwrap();
    let r: Result<(), perfdmf::db::DbError> = conn.transaction(|tx| {
        tx.execute("ALTER TABLE trial ADD COLUMN temp_col INTEGER", &[])?;
        Err(perfdmf::db::DbError::Eval("abort".into()))
    });
    assert!(r.is_err());
    let names: Vec<String> = conn
        .table_meta("trial")
        .unwrap()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    assert!(!names.contains(&"temp_col".to_string()), "{names:?}");
}
