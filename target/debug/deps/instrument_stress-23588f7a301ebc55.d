/root/repo/target/debug/deps/instrument_stress-23588f7a301ebc55.d: crates/telemetry/tests/instrument_stress.rs Cargo.toml

/root/repo/target/debug/deps/libinstrument_stress-23588f7a301ebc55.rmeta: crates/telemetry/tests/instrument_stress.rs Cargo.toml

crates/telemetry/tests/instrument_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
