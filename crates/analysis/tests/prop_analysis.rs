//! Property tests for the analysis toolkit.

use perfdmf_analysis::{
    adjusted_rand_index, amdahl_speedup, fit_amdahl, hierarchical, kmeans, pca, pearson,
    silhouette_score, summarize,
};
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (2usize..5, 4usize..40).prop_flat_map(|(d, n)| {
        proptest::collection::vec(proptest::collection::vec(-1e3f64..1e3, d), n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// k-means invariants: assignments in range, sizes sum to n, inertia
    /// non-negative and non-increasing in k, deterministic per seed.
    #[test]
    fn kmeans_invariants(data in arb_matrix(), k in 1usize..6, seed in 0u64..1000) {
        let r = kmeans(&data, k, seed, 50);
        let keff = k.min(data.len());
        prop_assert_eq!(r.assignments.len(), data.len());
        prop_assert!(r.assignments.iter().all(|&a| a < keff));
        prop_assert_eq!(r.cluster_sizes().iter().sum::<usize>(), data.len());
        prop_assert!(r.inertia >= 0.0);
        let r2 = kmeans(&data, k, seed, 50);
        prop_assert_eq!(r.assignments, r2.assignments);
    }

    /// Inertia never increases when k grows (same seed family).
    #[test]
    fn kmeans_inertia_monotone(data in arb_matrix()) {
        let i1 = kmeans(&data, 1, 7, 60).inertia;
        let i3 = kmeans(&data, 3, 7, 60).inertia;
        // k-means is a heuristic: allow tiny slack for local optima
        prop_assert!(i3 <= i1 * 1.05 + 1e-9, "i1={i1} i3={i3}");
    }

    /// Silhouette is always within [-1, 1].
    #[test]
    fn silhouette_bounded(data in arb_matrix(), k in 2usize..5) {
        let r = kmeans(&data, k, 3, 50);
        let s = silhouette_score(&data, &r.assignments, k.min(data.len()));
        prop_assert!((-1.0..=1.0).contains(&s), "{s}");
    }

    /// ARI properties: reflexive = 1, symmetric, label-permutation
    /// invariant.
    #[test]
    fn ari_properties(labels in proptest::collection::vec(0usize..4, 2..60)) {
        prop_assert_eq!(adjusted_rand_index(&labels, &labels), 1.0);
        let permuted: Vec<usize> = labels.iter().map(|&l| (l + 1) % 4).collect();
        prop_assert!((adjusted_rand_index(&labels, &permuted) - 1.0).abs() < 1e-12);
        let other: Vec<usize> = labels.iter().rev().cloned().collect();
        let ab = adjusted_rand_index(&labels, &other);
        let ba = adjusted_rand_index(&other, &labels);
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    /// PCA invariants: eigenvalues non-negative and descending; their sum
    /// equals the covariance trace; components orthonormal.
    #[test]
    fn pca_invariants(data in arb_matrix()) {
        let Some(p) = pca(&data) else { return Ok(()); };
        for w in p.eigenvalues.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        prop_assert!(p.eigenvalues.iter().all(|&e| e >= -1e-9));
        let d = data[0].len();
        let n = data.len() as f64;
        let mut trace = 0.0;
        for j in 0..d {
            let mean = data.iter().map(|r| r[j]).sum::<f64>() / n;
            trace += data.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / (n - 1.0);
        }
        let total: f64 = p.eigenvalues.iter().sum();
        prop_assert!((total - trace).abs() < 1e-6 * (1.0 + trace), "{total} vs {trace}");
        for i in 0..d {
            let norm: f64 = p.components[i].iter().map(|x| x * x).sum();
            prop_assert!((norm - 1.0).abs() < 1e-6);
        }
    }

    /// Pearson correlation is symmetric, bounded, and scale-invariant.
    #[test]
    fn pearson_properties(
        xs in proptest::collection::vec(-1e3f64..1e3, 3..40),
        scale in 0.1f64..100.0,
    ) {
        let ys: Vec<f64> = xs.iter().rev().cloned().collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            let r2 = pearson(&ys, &xs).unwrap();
            prop_assert!((r - r2).abs() < 1e-9);
            let scaled: Vec<f64> = xs.iter().map(|x| x * scale + 3.0).collect();
            if let Some(rs) = pearson(&scaled, &ys) {
                prop_assert!((r - rs).abs() < 1e-6, "{r} vs {rs}");
            }
        }
    }

    /// Summary invariants: min <= mean <= max; stddev >= 0; count right.
    #[test]
    fn summary_invariants(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = summarize(&xs).unwrap();
        prop_assert_eq!(s.count, xs.len());
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.stddev >= 0.0);
        prop_assert!((s.stddev * s.stddev - s.variance).abs() < 1e-6 * (1.0 + s.variance));
    }

    /// Hierarchical clustering invariants: n−1 merges, cut(k) produces at
    /// most k dense labels covering every leaf, cut(1) is one cluster.
    #[test]
    fn hierarchical_invariants(data in proptest::collection::vec(
        proptest::collection::vec(-50.0f64..50.0, 2), 1..30
    ), k in 1usize..6) {
        let tree = hierarchical(&data);
        prop_assert_eq!(tree.merges.len(), data.len().saturating_sub(1));
        let cut = tree.cut(k);
        prop_assert_eq!(cut.len(), data.len());
        let distinct: std::collections::HashSet<_> = cut.iter().collect();
        prop_assert!(distinct.len() <= k.min(data.len()).max(1));
        // labels dense: 0..distinct
        prop_assert!(cut.iter().all(|&c| c < distinct.len()));
        let one = tree.cut(1);
        prop_assert!(one.iter().all(|&c| c == 0));
        // distances non-negative
        prop_assert!(tree.merges.iter().all(|m| m.distance >= 0.0));
    }

    /// Amdahl fit recovers the generating serial fraction from noiseless
    /// curves at any plausible s.
    #[test]
    fn amdahl_fit_inverts_model(s in 0.001f64..0.9) {
        let pts: Vec<(usize, f64)> = [1usize, 2, 4, 8, 16, 32]
            .iter()
            .map(|&p| (p, amdahl_speedup(s, p)))
            .collect();
        let fit = fit_amdahl(&pts).unwrap();
        prop_assert!((fit.serial_fraction - s).abs() < 1e-6, "{} vs {s}", fit.serial_fraction);
    }
}
