//! End-to-end SQL suite exercising the engine through the Connection API,
//! modeled on the statements PerfDMF issues against its schema.

use perfdmf_db::{Connection, DbError, Outcome, Value};

fn seeded() -> Connection {
    let conn = Connection::open_in_memory();
    conn.execute(
        "CREATE TABLE application (
            id INTEGER PRIMARY KEY AUTO_INCREMENT,
            name TEXT NOT NULL,
            version TEXT)",
        &[],
    )
    .unwrap();
    conn.execute(
        "CREATE TABLE experiment (
            id INTEGER PRIMARY KEY AUTO_INCREMENT,
            application INTEGER NOT NULL REFERENCES application(id),
            name TEXT NOT NULL)",
        &[],
    )
    .unwrap();
    conn.execute(
        "CREATE TABLE trial (
            id INTEGER PRIMARY KEY AUTO_INCREMENT,
            experiment INTEGER NOT NULL REFERENCES experiment(id),
            name TEXT NOT NULL,
            node_count INTEGER,
            time DOUBLE)",
        &[],
    )
    .unwrap();
    conn.insert(
        "INSERT INTO application (name, version) VALUES ('evh1', '1.0'), ('sppm', '2.1')",
        &[],
    )
    .unwrap();
    conn.insert(
        "INSERT INTO experiment (application, name) VALUES (1, 'scaling'), (1, 'tuning'), (2, 'counters')",
        &[],
    )
    .unwrap();
    conn.insert(
        "INSERT INTO trial (experiment, name, node_count, time) VALUES
            (1, 'p1',   1, 100.0),
            (1, 'p2',   2,  52.0),
            (1, 'p4',   4,  28.0),
            (1, 'p8',   8,  16.0),
            (2, 'base', 4,  30.0),
            (3, 'c1',   16, NULL)",
        &[],
    )
    .unwrap();
    conn
}

#[test]
fn select_where_order_limit() {
    let conn = seeded();
    let rs = conn
        .query(
            "SELECT name, time FROM trial WHERE experiment = 1 ORDER BY time ASC LIMIT 2",
            &[],
        )
        .unwrap();
    assert_eq!(rs.columns, vec!["name", "time"]);
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.get(0, "name"), Some(&Value::from("p8")));
    assert_eq!(rs.get(1, "name"), Some(&Value::from("p4")));
}

#[test]
fn parameterized_queries() {
    let conn = seeded();
    let rs = conn
        .query(
            "SELECT COUNT(*) AS n FROM trial WHERE node_count >= ? AND experiment = ?",
            &[Value::Int(4), Value::Int(1)],
        )
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(2)));
    assert!(matches!(
        conn.query("SELECT * FROM trial WHERE id = ?", &[]),
        Err(DbError::MissingParameter(_))
    ));
}

#[test]
fn join_three_tables() {
    let conn = seeded();
    let rs = conn
        .query(
            "SELECT a.name AS app, e.name AS exp, t.name AS trial_name
             FROM trial t
             JOIN experiment e ON t.experiment = e.id
             JOIN application a ON e.application = a.id
             WHERE a.name = 'evh1'
             ORDER BY t.id",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 5);
    assert_eq!(rs.get(0, "app"), Some(&Value::from("evh1")));
    assert_eq!(rs.get(4, "trial_name"), Some(&Value::from("base")));
}

#[test]
fn left_join_null_padding() {
    let conn = seeded();
    // experiment 'counters' has one trial; applications without trials pad.
    conn.insert("INSERT INTO application (name) VALUES ('untested')", &[])
        .unwrap();
    let rs = conn
        .query(
            "SELECT a.name, e.id FROM application a LEFT JOIN experiment e ON e.application = a.id
             WHERE a.name = 'untested'",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][1], Value::Null);
}

#[test]
fn cross_join_counts() {
    let conn = seeded();
    let rs = conn
        .query("SELECT COUNT(*) FROM application, experiment", &[])
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(6)));
}

#[test]
fn group_by_having_aggregates() {
    let conn = seeded();
    let rs = conn
        .query(
            "SELECT experiment, COUNT(*) AS n, AVG(time) AS mean_time,
                    MIN(node_count) AS lo, MAX(node_count) AS hi
             FROM trial GROUP BY experiment HAVING COUNT(*) > 1 ORDER BY experiment",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.get(0, "n"), Some(&Value::Int(4)));
    assert_eq!(rs.get(0, "mean_time"), Some(&Value::Float(49.0)));
    assert_eq!(rs.get(0, "lo"), Some(&Value::Int(1)));
    assert_eq!(rs.get(0, "hi"), Some(&Value::Int(8)));
}

#[test]
fn stddev_matches_manual() {
    let conn = seeded();
    let rs = conn
        .query("SELECT STDDEV(time) FROM trial WHERE experiment = 1", &[])
        .unwrap();
    // sample stddev of [100, 52, 28, 16]
    let xs = [100.0f64, 52.0, 28.0, 16.0];
    let mean = xs.iter().sum::<f64>() / 4.0;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / 3.0;
    match rs.scalar() {
        Some(Value::Float(s)) => assert!((s - var.sqrt()).abs() < 1e-9),
        other => panic!("{other:?}"),
    }
}

#[test]
fn aggregates_skip_nulls() {
    let conn = seeded();
    let rs = conn
        .query("SELECT COUNT(time), COUNT(*), AVG(time) FROM trial", &[])
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(5));
    assert_eq!(rs.rows[0][1], Value::Int(6));
    match &rs.rows[0][2] {
        Value::Float(f) => assert!((f - 45.2).abs() < 1e-9),
        other => panic!("{other:?}"),
    }
}

#[test]
fn distinct_and_in() {
    let conn = seeded();
    let rs = conn
        .query(
            "SELECT DISTINCT node_count FROM trial WHERE node_count IN (1, 2, 4) ORDER BY node_count",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Int(1)],
            vec![Value::Int(2)],
            vec![Value::Int(4)]
        ]
    );
}

#[test]
fn like_and_case() {
    let conn = seeded();
    let rs = conn
        .query(
            "SELECT name, CASE WHEN node_count >= 8 THEN 'big' ELSE 'small' END AS size
             FROM trial WHERE name LIKE 'p%' ORDER BY node_count",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 4);
    assert_eq!(rs.get(0, "size"), Some(&Value::from("small")));
    assert_eq!(rs.get(3, "size"), Some(&Value::from("big")));
}

#[test]
fn update_and_delete_with_where() {
    let conn = seeded();
    let n = conn
        .update("UPDATE trial SET time = time * 2 WHERE experiment = 1", &[])
        .unwrap();
    assert_eq!(n, 4);
    let rs = conn
        .query("SELECT time FROM trial WHERE name = 'p1'", &[])
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Float(200.0)));
    let n = conn
        .update("DELETE FROM trial WHERE time IS NULL", &[])
        .unwrap();
    assert_eq!(n, 1);
    assert_eq!(conn.row_count("trial").unwrap(), 5);
}

#[test]
fn statement_atomicity_on_failed_multi_insert() {
    let conn = seeded();
    let before = conn.row_count("trial").unwrap();
    // Second tuple violates FK → whole statement must roll back.
    let err = conn.insert(
        "INSERT INTO trial (experiment, name) VALUES (1, 'ok'), (99, 'bad')",
        &[],
    );
    assert!(err.is_err());
    assert_eq!(conn.row_count("trial").unwrap(), before);
}

#[test]
fn explicit_transaction_commit_and_rollback() {
    let conn = seeded();
    conn.transaction(|tx| {
        tx.execute("INSERT INTO application (name) VALUES ('tx1')", &[])?;
        tx.execute("INSERT INTO application (name) VALUES ('tx2')", &[])?;
        Ok(())
    })
    .unwrap();
    assert_eq!(conn.row_count("application").unwrap(), 4);

    let r: Result<(), DbError> = conn.transaction(|tx| {
        tx.execute("INSERT INTO application (name) VALUES ('doomed')", &[])?;
        Err(DbError::Eval("abort".into()))
    });
    assert!(r.is_err());
    assert_eq!(conn.row_count("application").unwrap(), 4);
}

#[test]
fn sql_level_transactions() {
    let conn = seeded();
    conn.execute("BEGIN", &[]).unwrap();
    conn.execute("INSERT INTO application (name) VALUES ('x')", &[])
        .unwrap();
    conn.execute("ROLLBACK", &[]).unwrap();
    assert_eq!(conn.row_count("application").unwrap(), 2);
    conn.execute("BEGIN", &[]).unwrap();
    conn.execute("INSERT INTO application (name) VALUES ('y')", &[])
        .unwrap();
    conn.execute("COMMIT", &[]).unwrap();
    assert_eq!(conn.row_count("application").unwrap(), 3);
}

#[test]
fn flexible_schema_alter_table() {
    let conn = seeded();
    // Paper §3.2: add metadata columns at runtime, discover via metadata.
    conn.execute(
        "ALTER TABLE experiment ADD COLUMN compiler TEXT DEFAULT 'xlc'",
        &[],
    )
    .unwrap();
    conn.execute("ALTER TABLE experiment ADD COLUMN os_version TEXT", &[])
        .unwrap();
    let cols = conn.table_meta("experiment").unwrap();
    let names: Vec<_> = cols.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["id", "application", "name", "compiler", "os_version"]
    );
    // Existing rows picked up the default.
    let rs = conn
        .query("SELECT compiler FROM experiment WHERE id = 1", &[])
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::from("xlc")));
    conn.execute("ALTER TABLE experiment DROP COLUMN os_version", &[])
        .unwrap();
    assert_eq!(conn.table_meta("experiment").unwrap().len(), 4);
}

#[test]
fn index_accelerated_queries_same_results() {
    let conn = seeded();
    let plain = conn
        .query("SELECT id FROM trial WHERE node_count = 4 ORDER BY id", &[])
        .unwrap();
    conn.execute("CREATE INDEX ix_nodes ON trial (node_count)", &[])
        .unwrap();
    let mut indexed = conn
        .query("SELECT id FROM trial WHERE node_count = 4 ORDER BY id", &[])
        .unwrap();
    indexed.rows.sort();
    let mut plain_rows = plain.rows.clone();
    plain_rows.sort();
    assert_eq!(indexed.rows, plain_rows);
    // Range predicate through the index too.
    let rs = conn
        .query(
            "SELECT COUNT(*) FROM trial WHERE node_count BETWEEN 2 AND 8",
            &[],
        )
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(4)));
    conn.execute("DROP INDEX ix_nodes", &[]).unwrap();
}

#[test]
fn unique_index_enforced() {
    let conn = seeded();
    conn.execute("CREATE UNIQUE INDEX u_app_name ON application (name)", &[])
        .unwrap();
    assert!(matches!(
        conn.insert("INSERT INTO application (name) VALUES ('evh1')", &[]),
        Err(DbError::UniqueViolation { .. })
    ));
}

#[test]
fn order_by_alias_and_ordinal() {
    let conn = seeded();
    let rs = conn
        .query(
            "SELECT name, node_count * 2 AS doubled FROM trial WHERE experiment = 1 ORDER BY doubled DESC",
            &[],
        )
        .unwrap();
    assert_eq!(rs.get(0, "name"), Some(&Value::from("p8")));
    let rs = conn
        .query(
            "SELECT name, node_count FROM trial WHERE experiment = 1 ORDER BY 2 DESC",
            &[],
        )
        .unwrap();
    assert_eq!(rs.get(0, "name"), Some(&Value::from("p8")));
}

#[test]
fn scalar_select_without_from() {
    let conn = Connection::open_in_memory();
    assert_eq!(
        conn.query_scalar("SELECT 6 * 7", &[]).unwrap(),
        Value::Int(42)
    );
    assert_eq!(
        conn.query_scalar("SELECT UPPER('tau') || '-db'", &[])
            .unwrap(),
        Value::Text("TAU-db".into())
    );
}

#[test]
fn table_wildcards() {
    let conn = seeded();
    let rs = conn
        .query(
            "SELECT t.*, e.name FROM trial t JOIN experiment e ON t.experiment = e.id WHERE t.id = 1",
            &[],
        )
        .unwrap();
    assert_eq!(rs.columns.len(), 6);
    let rs2 = conn.query("SELECT * FROM trial WHERE id = 1", &[]).unwrap();
    assert_eq!(
        rs2.columns,
        vec!["id", "experiment", "name", "node_count", "time"]
    );
}

#[test]
fn last_insert_id_reported() {
    let conn = seeded();
    match conn
        .execute("INSERT INTO application (name) VALUES ('z')", &[])
        .unwrap()
    {
        Outcome::Affected {
            count,
            last_insert_id,
        } => {
            assert_eq!(count, 1);
            assert_eq!(last_insert_id, Some(3));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn error_on_unknown_entities() {
    let conn = seeded();
    assert!(matches!(
        conn.query("SELECT * FROM nope", &[]),
        Err(DbError::NoSuchTable(_))
    ));
    assert!(matches!(
        conn.query("SELECT nope FROM trial", &[]),
        Err(DbError::NoSuchColumn { .. })
    ));
    assert!(matches!(
        conn.query(
            "SELECT id FROM trial t JOIN experiment e ON t.experiment = e.id",
            &[]
        ),
        Err(DbError::AmbiguousColumn(_))
    ));
}

#[test]
fn self_referential_join_with_aliases() {
    let conn = seeded();
    let rs = conn
        .query(
            "SELECT a.name, b.name FROM application a JOIN application b ON a.id < b.id",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
}

#[test]
fn where_aggregate_rejected() {
    let conn = seeded();
    assert!(conn
        .query("SELECT id FROM trial WHERE COUNT(*) > 1", &[])
        .is_err());
}

#[test]
fn group_by_expression() {
    let conn = seeded();
    let rs = conn
        .query(
            "SELECT node_count >= 4 AS big, COUNT(*) FROM trial GROUP BY node_count >= 4 ORDER BY 1",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0][1], Value::Int(2)); // 1, 2
    assert_eq!(rs.rows[1][1], Value::Int(4)); // 4, 4, 8, 16
}

#[test]
fn offset_pagination() {
    let conn = seeded();
    let page1 = conn
        .query("SELECT id FROM trial ORDER BY id LIMIT 2 OFFSET 0", &[])
        .unwrap();
    let page2 = conn
        .query("SELECT id FROM trial ORDER BY id LIMIT 2 OFFSET 2", &[])
        .unwrap();
    assert_eq!(page1.rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    assert_eq!(page2.rows, vec![vec![Value::Int(3)], vec![Value::Int(4)]]);
}

#[test]
fn in_subqueries() {
    let conn = seeded();
    // trials of the evh1 application, via a nested subquery chain
    let rs = conn
        .query(
            "SELECT name FROM trial
             WHERE experiment IN (
                 SELECT id FROM experiment WHERE application IN (
                     SELECT id FROM application WHERE name = 'evh1'))
             ORDER BY id",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 5);
    assert_eq!(rs.get(0, "name"), Some(&Value::from("p1")));
    // NOT IN
    let rs = conn
        .query(
            "SELECT COUNT(*) FROM trial WHERE experiment NOT IN (SELECT id FROM experiment WHERE name = 'scaling')",
            &[],
        )
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(2)));
    // parameters inside the subquery bind from the same list
    let rs = conn
        .query(
            "SELECT COUNT(*) FROM trial WHERE experiment IN (SELECT id FROM experiment WHERE application = ?)",
            &[Value::Int(1)],
        )
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(5)));
    // multi-column subquery is rejected
    assert!(conn
        .query(
            "SELECT 1 FROM trial WHERE id IN (SELECT id, name FROM trial)",
            &[]
        )
        .is_err());
}

#[test]
fn exists_subqueries() {
    let conn = seeded();
    // applications that have at least one experiment
    let rs = conn
        .query(
            "SELECT name FROM application
             WHERE EXISTS (SELECT 1 FROM experiment) ORDER BY id",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    // NOT EXISTS over an empty set selects everything
    let rs = conn
        .query(
            "SELECT COUNT(*) FROM application
             WHERE NOT EXISTS (SELECT 1 FROM trial WHERE node_count > 999)",
            &[],
        )
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(2)));
    // EXISTS over an empty set selects nothing
    let rs = conn
        .query(
            "SELECT COUNT(*) FROM application
             WHERE EXISTS (SELECT 1 FROM trial WHERE node_count > 999)",
            &[],
        )
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(0)));
}

#[test]
fn scalar_subqueries() {
    let conn = seeded();
    // trials slower than the average
    let rs = conn
        .query(
            "SELECT name FROM trial WHERE time > (SELECT AVG(time) FROM trial) ORDER BY time DESC",
            &[],
        )
        .unwrap();
    assert_eq!(rs.get(0, "name"), Some(&Value::from("p1")));
    // scalar subquery in projection
    let rs = conn
        .query("SELECT name, time - (SELECT MIN(time) FROM trial) AS over_best FROM trial WHERE name = 'p8'", &[])
        .unwrap();
    assert_eq!(rs.get(0, "over_best"), Some(&Value::Float(0.0)));
    // empty scalar subquery yields NULL
    let v = conn
        .query_scalar("SELECT (SELECT time FROM trial WHERE name = 'nope')", &[])
        .unwrap();
    assert!(v.is_null());
    // more than one row is an error
    assert!(conn
        .query_scalar("SELECT (SELECT time FROM trial)", &[])
        .is_err());
    // DML with subqueries
    let n = conn
        .update(
            "DELETE FROM trial WHERE time > (SELECT AVG(time) FROM trial)",
            &[],
        )
        .unwrap();
    assert_eq!(n, 2); // p1 (100.0) and p2 (52.0) vs avg 45.2
    let n = conn
        .update(
            "UPDATE trial SET node_count = (SELECT MAX(node_count) FROM trial) WHERE name = 'base'",
            &[],
        )
        .unwrap();
    assert_eq!(n, 1);
    assert_eq!(
        conn.query_scalar("SELECT node_count FROM trial WHERE name = 'base'", &[])
            .unwrap(),
        Value::Int(16)
    );
}

#[test]
fn explain_reports_plan_decisions() {
    let conn = seeded();
    // seq scan without an index
    let rs = conn
        .query("EXPLAIN SELECT name FROM trial WHERE node_count = 4", &[])
        .unwrap();
    assert_eq!(rs.columns, vec!["plan"]);
    let plan = rs
        .rows
        .iter()
        .map(|r| r[0].as_text().unwrap().to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(plan.contains("seq scan on trial"), "{plan}");
    assert!(plan.contains("filter: WHERE"), "{plan}");
    // index scan once the index exists
    conn.execute("CREATE INDEX ix_nodes ON trial (node_count)", &[])
        .unwrap();
    let rs = conn
        .query("EXPLAIN SELECT name FROM trial WHERE node_count = 4", &[])
        .unwrap();
    let plan = rs.rows[0][0].as_text().unwrap();
    assert!(plan.contains("index scan on trial"), "{plan}");
    // join strategy + projection pruning reported
    let rs = conn
        .query(
            "EXPLAIN SELECT COUNT(*) FROM experiment e
             JOIN trial t ON t.experiment = e.id WHERE e.application = 1",
            &[],
        )
        .unwrap();
    let plan = rs
        .rows
        .iter()
        .map(|r| r[0].as_text().unwrap().to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(plan.contains("hash join with trial"), "{plan}");
    assert!(plan.contains("pushdown: 1 base-only conjunct"), "{plan}");
    assert!(plan.contains("projection pruning"), "{plan}");
    assert!(plan.contains("aggregate"), "{plan}");
    // EXPLAIN of DML describes without executing
    let before = conn.row_count("trial").unwrap();
    let rs = conn
        .query("EXPLAIN DELETE FROM trial WHERE id = 1", &[])
        .unwrap();
    assert!(rs.rows[0][0]
        .as_text()
        .unwrap()
        .contains("delete from trial"));
    assert_eq!(conn.row_count("trial").unwrap(), before);
}

/// Collect an EXPLAIN [ANALYZE] result into one newline-joined string.
fn plan_text(rs: &perfdmf_db::ResultSet) -> String {
    rs.rows
        .iter()
        .map(|r| r[0].as_text().unwrap().to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Pull `(returned, scanned)` out of the `total:` line of an
/// EXPLAIN ANALYZE plan.
fn analyze_totals(plan: &str) -> (u64, u64) {
    let total = plan
        .lines()
        .find(|l| l.starts_with("total: "))
        .unwrap_or_else(|| panic!("no total line in:\n{plan}"));
    let mut nums = total
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<u64>().unwrap());
    (nums.next().unwrap(), nums.next().unwrap())
}

#[test]
fn explain_analyze_matches_serial_execution() {
    let conn = seeded();
    let sql = "SELECT name FROM trial WHERE node_count = 4 ORDER BY name";
    let plain = conn.query(sql, &[]).unwrap();
    let rs = conn.query(&format!("EXPLAIN ANALYZE {sql}"), &[]).unwrap();
    assert_eq!(rs.columns, vec!["plan"]);
    let plan = plan_text(&rs);
    // Per-operator actuals: the whole table was scanned serially, the
    // filter kept 2 of 6 rows, and the sort was timed.
    assert!(plan.contains("seq scan on trial"), "{plan}");
    assert!(plan.contains("[actual rows=6, partitions=serial"), "{plan}");
    assert!(plan.contains("filter: WHERE [actual rows=2 of 6"), "{plan}");
    assert!(plan.contains("sort: 1 key(s) ["), "{plan}");
    // The total line agrees with what a plain execution reports.
    let (returned, scanned) = analyze_totals(&plan);
    assert_eq!(returned, plain.rows.len() as u64);
    assert_eq!(scanned, plain.rows_scanned);
}

#[test]
fn explain_analyze_matches_parallel_execution() {
    use perfdmf_pool as pool;
    let conn = seeded();
    let sql = "SELECT experiment, COUNT(*), AVG(time) FROM trial GROUP BY experiment";
    let _par = pool::override_for_thread(4, 1);
    let plain = conn.query(sql, &[]).unwrap();
    let rs = conn.query(&format!("EXPLAIN ANALYZE {sql}"), &[]).unwrap();
    let plan = plan_text(&rs);
    assert!(plan.contains("aggregate: group by 1 expr(s)"), "{plan}");
    assert!(plan.contains("[actual groups=3, partitions="), "{plan}");
    // Forced-parallel: the aggregate must NOT report a serial pass.
    let agg_line = plan.lines().find(|l| l.starts_with("aggregate: ")).unwrap();
    assert!(!agg_line.contains("partitions=serial"), "{plan}");
    let (returned, scanned) = analyze_totals(&plan);
    assert_eq!(returned, plain.rows.len() as u64);
    assert_eq!(scanned, plain.rows_scanned);
}

#[test]
fn explain_analyze_dml_executes_and_reports_rows() {
    let conn = seeded();
    let before = conn.row_count("trial").unwrap();
    let rs = conn
        .query("EXPLAIN ANALYZE DELETE FROM trial WHERE id = 1", &[])
        .unwrap();
    let plan = plan_text(&rs);
    assert!(plan.contains("delete from trial"), "{plan}");
    assert!(plan.contains("[actual rows_affected=1"), "{plan}");
    // Unlike plain EXPLAIN, ANALYZE really runs the statement.
    assert_eq!(conn.row_count("trial").unwrap(), before - 1);
}

#[test]
fn concurrent_readers_one_writer() {
    let conn = seeded();
    let mut handles = Vec::new();
    for i in 0..4 {
        let c = conn.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..50 {
                let rs = c.query("SELECT COUNT(*) FROM trial", &[]).unwrap();
                let n = rs.scalar().unwrap().as_int().unwrap();
                assert!(n >= 6, "thread {i} saw {n}");
            }
        }));
    }
    let w = conn.clone();
    handles.push(std::thread::spawn(move || {
        for i in 0..25 {
            w.insert(
                "INSERT INTO trial (experiment, name) VALUES (1, ?)",
                &[Value::Text(format!("w{i}").into())],
            )
            .unwrap();
        }
    }));
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(conn.row_count("trial").unwrap(), 31);
}

#[test]
fn result_set_rendering() {
    let conn = seeded();
    let rs = conn
        .query(
            "SELECT name, node_count FROM trial WHERE id <= 2 ORDER BY id",
            &[],
        )
        .unwrap();
    let s = rs.to_table_string();
    assert!(s.contains("name"));
    assert!(s.contains("p1"));
    assert!(s.lines().count() >= 4);
}

// ---------------- columnar scan selection ----------------

#[test]
fn explain_names_columnar_strategy_and_stats() {
    use perfdmf_db::{override_columnar, ColumnarMode};
    let conn = seeded();
    let sql = "SELECT COUNT(*), SUM(node_count), AVG(time) FROM trial WHERE node_count >= 2";
    // Too few rows for Auto to pick columnar; force it.
    let _force = override_columnar(ColumnarMode::Force);
    let rs = conn.query(&format!("EXPLAIN {sql}"), &[]).unwrap();
    let plan = plan_text(&rs);
    assert!(plan.contains("columnar scan on trial"), "{plan}");
    assert!(plan.contains("3 kernel(s)"), "{plan}");
    assert!(plan.contains("1 fused predicate(s)"), "{plan}");
    assert!(plan.contains("forced by PERFDMF_COLUMNAR"), "{plan}");
    // The WHERE is fused into the scan, not a separate operator.
    assert!(!plan.contains("filter: WHERE"), "{plan}");
}

#[test]
fn columnar_and_row_execution_agree() {
    use perfdmf_db::{override_columnar, ColumnarMode};
    let conn = seeded();
    let queries = [
        "SELECT COUNT(*), COUNT(time), SUM(node_count), AVG(time) FROM trial",
        "SELECT MIN(time), MAX(time), STDDEV(time) FROM trial WHERE node_count >= 2",
        "SELECT MIN(name), MAX(name) FROM trial WHERE name != 'base'",
        "SELECT SUM(node_count) * 2 + COUNT(*) FROM trial WHERE time BETWEEN 20.0 AND 60.0",
        "SELECT COUNT(*) FROM trial WHERE time IS NULL",
        "SELECT AVG(node_count) FROM trial WHERE experiment IN (1, 3)",
    ];
    for sql in queries {
        let row = {
            let _off = override_columnar(ColumnarMode::Off);
            conn.query(sql, &[]).unwrap()
        };
        let col = {
            let _force = override_columnar(ColumnarMode::Force);
            conn.query(sql, &[]).unwrap()
        };
        assert_eq!(row, col, "columnar diverged on {sql}");
    }
}

#[test]
fn explain_analyze_columnar_reports_chunk_cache() {
    use perfdmf_db::{override_columnar, ColumnarMode};
    let conn = seeded();
    let sql = "SELECT SUM(time), COUNT(*) FROM trial";
    let _force = override_columnar(ColumnarMode::Force);
    // First run builds the chunk (miss), second reads it back (hit).
    conn.query(sql, &[]).unwrap();
    let rs = conn.query(&format!("EXPLAIN ANALYZE {sql}"), &[]).unwrap();
    let plan = plan_text(&rs);
    assert!(plan.contains("columnar scan on trial"), "{plan}");
    assert!(plan.contains("cache hits=1 misses=0"), "{plan}");
    assert!(plan.contains("chunks=1"), "{plan}");
    let (returned, scanned) = analyze_totals(&plan);
    assert_eq!(returned, 1);
    assert_eq!(scanned, 6);
}

#[test]
fn auto_columnar_requires_stats_justification() {
    use perfdmf_db::{override_columnar, ColumnarMode};
    let conn = seeded();
    let _auto = override_columnar(ColumnarMode::Auto);
    // 6 live rows: far below the chunk threshold, so Auto keeps row
    // execution and EXPLAIN says so.
    let rs = conn
        .query("EXPLAIN SELECT COUNT(*) FROM trial", &[])
        .unwrap();
    let plan = plan_text(&rs);
    assert!(plan.contains("seq scan on trial"), "{plan}");
    assert!(!plan.contains("columnar scan"), "{plan}");
}

// ---------------- early-exit LIMIT pushdown ----------------

#[test]
fn limit_pushdown_stops_scanning_early() {
    let conn = seeded();
    // Plain LIMIT: only the first two rows are ever examined.
    let rs = conn.query("SELECT name FROM trial LIMIT 2", &[]).unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows_scanned, 2, "scan did not stop early");
    // WHERE + OFFSET: scans until offset + limit matches are found.
    let rs = conn
        .query(
            "SELECT name FROM trial WHERE node_count >= 2 LIMIT 1 OFFSET 1",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.get(0, "name"), Some(&Value::from("p4")));
    assert!(rs.rows_scanned < 6, "scan did not stop early: {rs:?}");
    // The plan advertises the early exit.
    let rs = conn
        .query("EXPLAIN SELECT name FROM trial LIMIT 2", &[])
        .unwrap();
    let plan = plan_text(&rs);
    assert!(plan.contains("[early exit after 2 match(es)]"), "{plan}");
    // ORDER BY disables it: every row must be seen before sorting.
    let rs = conn
        .query("SELECT name FROM trial ORDER BY name LIMIT 2", &[])
        .unwrap();
    assert_eq!(rs.rows_scanned, 6);
}

#[test]
fn sort_elision_requires_an_index_on_the_key() {
    let conn = seeded();
    // No index on trial(name): the Sort blocks the LIMIT pushdown — every
    // row must be seen before the first output row is known.
    let rs = conn
        .query("SELECT name FROM trial ORDER BY name LIMIT 2", &[])
        .unwrap();
    assert_eq!(
        rs.rows_scanned, 6,
        "early exit fired under an unsorted scan"
    );
    let expected = rs.rows.clone();
    let plan = plan_text(
        &conn
            .query("EXPLAIN SELECT name FROM trial ORDER BY name LIMIT 2", &[])
            .unwrap(),
    );
    assert!(plan.contains("sort: 1 key(s)"), "{plan}");
    assert!(!plan.contains("early exit"), "{plan}");

    // An index on the key lets the optimizer drop the Sort, scan in key
    // order, and stop after LIMIT matches — same rows, fewer examined.
    conn.execute("CREATE INDEX ix_name ON trial (name)", &[])
        .unwrap();
    let rs = conn
        .query("SELECT name FROM trial ORDER BY name LIMIT 2", &[])
        .unwrap();
    assert_eq!(rs.rows, expected, "sort elision changed the result");
    assert_eq!(rs.rows_scanned, 2, "index-order scan did not stop early");
    let plan = plan_text(
        &conn
            .query("EXPLAIN SELECT name FROM trial ORDER BY name LIMIT 2", &[])
            .unwrap(),
    );
    assert!(plan.contains("index-order scan on trial"), "{plan}");
    assert!(plan.contains("[early exit after 2 match(es)]"), "{plan}");
    assert!(!plan.contains("sort:"), "{plan}");
    assert!(plan.contains("optimizer: sort-elision:"), "{plan}");
    assert!(plan.contains("optimizer: limit-pushdown:"), "{plan}");
}

#[test]
fn sort_elision_declines_unsupported_shapes() {
    let conn = seeded();
    conn.execute("CREATE INDEX ix_name ON trial (name)", &[])
        .unwrap();
    // DESC cannot ride an ascending index scan.
    let rs = conn
        .query("SELECT name FROM trial ORDER BY name DESC LIMIT 2", &[])
        .unwrap();
    assert_eq!(rs.rows_scanned, 6);
    assert_eq!(rs.get(0, "name"), Some(&Value::from("p8")));
    // A projection alias shadowing the key column changes what ORDER BY
    // means; the rule must leave the Sort in place.
    let rs = conn
        .query(
            "SELECT node_count AS name FROM trial ORDER BY name LIMIT 2",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows_scanned, 6);
    // Multi-key sorts keep the Sort node.
    let rs = conn
        .query(
            "SELECT name FROM trial ORDER BY name, node_count LIMIT 2",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows_scanned, 6);
}

#[test]
fn sort_elision_fuses_where_and_respects_nulls() {
    let conn = seeded();
    conn.execute(
        "INSERT INTO trial (experiment, name, node_count, time) VALUES (1, 'nullname', NULL, 0.0)",
        &[],
    )
    .unwrap();
    conn.execute("CREATE INDEX ix_nodes ON trial (node_count)", &[])
        .unwrap();
    // Reference: optimizer off. NULL sorts first, ties stay in id order.
    let naive = {
        let _g = perfdmf_db::override_optimizer(perfdmf_db::OptimizerConfig::disabled());
        conn.query(
            "SELECT name, node_count FROM trial WHERE node_count IS NULL OR node_count >= 2 \
             ORDER BY node_count LIMIT 4",
            &[],
        )
        .unwrap()
    };
    let opt = conn
        .query(
            "SELECT name, node_count FROM trial WHERE node_count IS NULL OR node_count >= 2 \
             ORDER BY node_count LIMIT 4",
            &[],
        )
        .unwrap();
    assert_eq!(opt, naive, "sort elision diverged from the naive plan");
    assert_eq!(opt.get(0, "name"), Some(&Value::from("nullname")));
    let plan = plan_text(
        &conn
            .query(
                "EXPLAIN SELECT name, node_count FROM trial \
                 WHERE node_count IS NULL OR node_count >= 2 ORDER BY node_count LIMIT 4",
                &[],
            )
            .unwrap(),
    );
    assert!(plan.contains("index-order scan on trial"), "{plan}");
    assert!(
        plan.contains("WHERE conjunct(s) fused into the scan"),
        "{plan}"
    );
}
