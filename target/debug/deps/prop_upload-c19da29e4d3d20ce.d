/root/repo/target/debug/deps/prop_upload-c19da29e4d3d20ce.d: crates/core/tests/prop_upload.rs

/root/repo/target/debug/deps/prop_upload-c19da29e4d3d20ce: crates/core/tests/prop_upload.rs

crates/core/tests/prop_upload.rs:
