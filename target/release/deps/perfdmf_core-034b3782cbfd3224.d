/root/repo/target/release/deps/perfdmf_core-034b3782cbfd3224.d: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/objects.rs crates/core/src/schema.rs crates/core/src/session.rs crates/core/src/upload.rs

/root/repo/target/release/deps/libperfdmf_core-034b3782cbfd3224.rlib: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/objects.rs crates/core/src/schema.rs crates/core/src/session.rs crates/core/src/upload.rs

/root/repo/target/release/deps/libperfdmf_core-034b3782cbfd3224.rmeta: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/objects.rs crates/core/src/schema.rs crates/core/src/session.rs crates/core/src/upload.rs

crates/core/src/lib.rs:
crates/core/src/archive.rs:
crates/core/src/objects.rs:
crates/core/src/schema.rs:
crates/core/src/session.rs:
crates/core/src/upload.rs:
