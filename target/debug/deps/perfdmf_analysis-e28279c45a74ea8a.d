/root/repo/target/debug/deps/perfdmf_analysis-e28279c45a74ea8a.d: crates/analysis/src/lib.rs crates/analysis/src/compare.rs crates/analysis/src/features.rs crates/analysis/src/hierarchical.rs crates/analysis/src/kmeans.rs crates/analysis/src/pca.rs crates/analysis/src/report.rs crates/analysis/src/scalability.rs crates/analysis/src/speedup.rs crates/analysis/src/stats.rs

/root/repo/target/debug/deps/libperfdmf_analysis-e28279c45a74ea8a.rlib: crates/analysis/src/lib.rs crates/analysis/src/compare.rs crates/analysis/src/features.rs crates/analysis/src/hierarchical.rs crates/analysis/src/kmeans.rs crates/analysis/src/pca.rs crates/analysis/src/report.rs crates/analysis/src/scalability.rs crates/analysis/src/speedup.rs crates/analysis/src/stats.rs

/root/repo/target/debug/deps/libperfdmf_analysis-e28279c45a74ea8a.rmeta: crates/analysis/src/lib.rs crates/analysis/src/compare.rs crates/analysis/src/features.rs crates/analysis/src/hierarchical.rs crates/analysis/src/kmeans.rs crates/analysis/src/pca.rs crates/analysis/src/report.rs crates/analysis/src/scalability.rs crates/analysis/src/speedup.rs crates/analysis/src/stats.rs

crates/analysis/src/lib.rs:
crates/analysis/src/compare.rs:
crates/analysis/src/features.rs:
crates/analysis/src/hierarchical.rs:
crates/analysis/src/kmeans.rs:
crates/analysis/src/pca.rs:
crates/analysis/src/report.rs:
crates/analysis/src/scalability.rs:
crates/analysis/src/speedup.rs:
crates/analysis/src/stats.rs:
