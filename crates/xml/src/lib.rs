//! # perfdmf-xml
//!
//! A small, dependency-free XML library used by PerfDMF for its common
//! profile XML exchange format and for importing PerfSuite (`psrun`) XML
//! profiles.
//!
//! The library provides:
//!
//! * [`Reader`] — a streaming pull parser producing [`Event`]s
//!   (start/end/empty elements, text, CDATA, comments, processing
//!   instructions, and the XML declaration).
//! * [`Writer`] — a streaming writer with optional pretty-printing that
//!   guarantees well-formed output (balanced elements, escaped content).
//! * [`Element`] — a convenience DOM built on top of the pull parser for
//!   small documents where random access is more ergonomic than streaming.
//!
//! The parser is intentionally a *practical* XML subset: namespaces are
//! surfaced as plain prefixed names, DTDs are skipped rather than processed,
//! and only the five predefined entities plus numeric character references
//! are resolved. This matches what performance-tool XML (psrun output, the
//! PerfDMF exchange format) actually uses.
//!
//! ## Example
//!
//! ```
//! use perfdmf_xml::{Element, Writer};
//!
//! let mut out = String::new();
//! let mut w = Writer::new(&mut out);
//! w.begin("profile").unwrap();
//! w.attr("tool", "tau").unwrap();
//! w.text_element("event", "MPI_Send()").unwrap();
//! w.end().unwrap();
//! w.finish().unwrap();
//!
//! let doc = Element::parse(&out).unwrap();
//! assert_eq!(doc.name, "profile");
//! assert_eq!(doc.attr("tool"), Some("tau"));
//! assert_eq!(doc.child("event").unwrap().text(), "MPI_Send()");
//! ```

mod dom;
mod error;
mod escape;
mod reader;
mod writer;

pub use dom::Element;
pub use error::{Error, Result};
pub use escape::{escape_attr, escape_text, unescape};
pub use reader::{Attribute, Event, Reader};
pub use writer::Writer;
