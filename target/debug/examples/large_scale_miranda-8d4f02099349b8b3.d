/root/repo/target/debug/examples/large_scale_miranda-8d4f02099349b8b3.d: examples/large_scale_miranda.rs

/root/repo/target/debug/examples/large_scale_miranda-8d4f02099349b8b3: examples/large_scale_miranda.rs

examples/large_scale_miranda.rs:
