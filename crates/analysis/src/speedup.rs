//! Speedup and scalability analysis (paper §5.2).
//!
//! "Given performance data from experiments with varying numbers of
//! processors, the tool automatically calculates the minimum, mean and
//! maximum values for the speedup \[of\] every profiled routine."
//!
//! [`SpeedupAnalysis`] consumes one [`Profile`] per processor count and
//! produces per-routine min/mean/max speedup curves relative to the
//! smallest trial, plus whole-application speedup/efficiency and an
//! Amdahl serial-fraction fit.

use crate::stats::linear_fit;
use perfdmf_profile::{EventId, IntervalField, MetricId, Profile};
use std::collections::BTreeMap;

/// Speedup of one routine at one processor count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupPoint {
    /// Processor count of this trial.
    pub processors: usize,
    /// Speedup of the thread with the *least* improvement.
    pub min: f64,
    /// Mean speedup across threads.
    pub mean: f64,
    /// Speedup of the thread with the *most* improvement.
    pub max: f64,
}

/// Per-routine speedup curve.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutineSpeedup {
    /// Routine (interval event) name.
    pub event: String,
    /// One point per trial, ordered by processor count.
    pub points: Vec<SpeedupPoint>,
}

/// Whole-application scalability result.
#[derive(Debug, Clone, PartialEq)]
pub struct ApplicationScaling {
    /// (processors, speedup, efficiency) per trial.
    pub points: Vec<(usize, f64, f64)>,
    /// Estimated Amdahl serial fraction (`None` if the fit is degenerate).
    pub amdahl_serial_fraction: Option<f64>,
}

/// Multi-trial speedup analyzer.
#[derive(Debug, Default)]
pub struct SpeedupAnalysis {
    /// (processors, profile), sorted by processors.
    trials: Vec<(usize, Profile)>,
    metric: String,
}

impl SpeedupAnalysis {
    /// New analysis over the named metric (e.g. `TIME`).
    pub fn new(metric: impl Into<String>) -> Self {
        SpeedupAnalysis {
            trials: Vec::new(),
            metric: metric.into(),
        }
    }

    /// Add one trial.
    pub fn add_trial(&mut self, processors: usize, profile: Profile) {
        self.trials.push((processors, profile));
        self.trials.sort_by_key(|(p, _)| *p);
    }

    /// Number of trials added.
    pub fn trial_count(&self) -> usize {
        self.trials.len()
    }

    fn metric_of(&self, p: &Profile) -> Option<MetricId> {
        p.find_metric(&self.metric)
    }

    /// Mean total time of the application in a profile: the mean-summary
    /// inclusive of the event with the largest inclusive value (the root).
    fn app_time(&self, p: &Profile) -> Option<f64> {
        let m = self.metric_of(p)?;
        let mean = p.mean_summary(m);
        mean.iter()
            .filter_map(|d| d.inclusive())
            .fold(None, |acc: Option<f64>, x| {
                Some(acc.map_or(x, |a| a.max(x)))
            })
    }

    /// Per-routine min/mean/max speedup relative to the smallest trial.
    ///
    /// Speedup of routine r at p processors = mean_exclusive(r, base) /
    /// {max, mean, min}_exclusive(r, p): dividing the baseline by the
    /// slowest thread gives the min speedup, by the fastest the max.
    /// Routines absent from a trial are skipped for that trial.
    pub fn routine_speedups(&self) -> Vec<RoutineSpeedup> {
        let Some((_, base)) = self.trials.first() else {
            return Vec::new();
        };
        let Some(base_metric) = self.metric_of(base) else {
            return Vec::new();
        };
        // Baseline mean exclusive per routine name.
        let mut baseline: BTreeMap<&str, f64> = BTreeMap::new();
        for (i, e) in base.events().iter().enumerate() {
            if let Some(stats) = base.event_stats(EventId(i), base_metric, IntervalField::Exclusive)
            {
                if stats.mean > 0.0 {
                    baseline.insert(e.name.as_str(), stats.mean);
                }
            }
        }
        let mut out: BTreeMap<String, RoutineSpeedup> = BTreeMap::new();
        for (procs, profile) in &self.trials {
            let Some(metric) = self.metric_of(profile) else {
                continue;
            };
            for (i, e) in profile.events().iter().enumerate() {
                let Some(&base_mean) = baseline.get(e.name.as_str()) else {
                    continue;
                };
                let Some(stats) = profile.event_stats(EventId(i), metric, IntervalField::Exclusive)
                else {
                    continue;
                };
                if stats.min <= 0.0 {
                    continue;
                }
                let entry = out.entry(e.name.clone()).or_insert_with(|| RoutineSpeedup {
                    event: e.name.clone(),
                    points: Vec::new(),
                });
                entry.points.push(SpeedupPoint {
                    processors: *procs,
                    min: base_mean / stats.max,
                    mean: base_mean / stats.mean,
                    max: base_mean / stats.min,
                });
            }
        }
        out.into_values().collect()
    }

    /// Whole-application speedup, efficiency, and Amdahl fit.
    ///
    /// With baseline processors `p0`, speedup(p) = T(p0)/T(p) and
    /// efficiency(p) = speedup·p0/p. The Amdahl serial fraction `s` is
    /// fit from T(p) ≈ T1·(s + (1−s)/(p/p0)) by least squares on
    /// T(p)/T(p0) vs p0/p.
    pub fn application_scaling(&self) -> Option<ApplicationScaling> {
        let (p0, base) = self.trials.first()?;
        let t0 = self.app_time(base)?;
        if t0 <= 0.0 {
            return None;
        }
        let mut points = Vec::with_capacity(self.trials.len());
        let mut xs = Vec::new(); // p0/p
        let mut ys = Vec::new(); // T(p)/T(p0)
        for (p, profile) in &self.trials {
            let t = self.app_time(profile)?;
            let speedup = t0 / t;
            let efficiency = speedup * *p0 as f64 / *p as f64;
            points.push((*p, speedup, efficiency));
            xs.push(*p0 as f64 / *p as f64);
            ys.push(t / t0);
        }
        // Amdahl: T(p)/T(p0) = s + (1-s)·(p0/p) → intercept = s.
        let amdahl_serial_fraction = linear_fit(&xs, &ys)
            .map(|f| f.intercept.clamp(0.0, 1.0))
            .filter(|_| xs.len() >= 3);
        Some(ApplicationScaling {
            points,
            amdahl_serial_fraction,
        })
    }

    /// Format a report table (min/mean/max per routine per trial).
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<32} {:>8} {:>10} {:>10} {:>10}\n",
            "routine", "procs", "min", "mean", "max"
        ));
        for r in self.routine_speedups() {
            for pt in &r.points {
                out.push_str(&format!(
                    "{:<32} {:>8} {:>10.3} {:>10.3} {:>10.3}\n",
                    truncate(&r.event, 32),
                    pt.processors,
                    pt.min,
                    pt.mean,
                    pt.max
                ));
            }
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfdmf_profile::{IntervalData, IntervalEvent, Metric, ThreadId};

    /// Perfect-scaling profile: per-thread exclusive time = total/p.
    fn trial(procs: usize, total_work: f64, serial: f64) -> Profile {
        let mut p = Profile::new(format!("p{procs}"));
        let m = p.add_metric(Metric::measured("TIME"));
        let par = p.add_event(IntervalEvent::new("parallel_loop", "COMP"));
        let ser = p.add_event(IntervalEvent::new("serial_setup", "COMP"));
        let root = p.add_event(IntervalEvent::new("main", "COMP"));
        p.add_threads((0..procs as u32).map(|n| ThreadId::new(n, 0, 0)));
        let per = total_work / procs as f64;
        for &t in p.threads().to_vec().iter() {
            p.set_interval(par, t, m, IntervalData::new(per, per, 1.0, 0.0));
            p.set_interval(ser, t, m, IntervalData::new(serial, serial, 1.0, 0.0));
            p.set_interval(root, t, m, IntervalData::new(per + serial, 0.0, 1.0, 2.0));
        }
        p
    }

    fn analysis() -> SpeedupAnalysis {
        let mut a = SpeedupAnalysis::new("TIME");
        for procs in [1usize, 2, 4, 8] {
            a.add_trial(procs, trial(procs, 100.0, 5.0));
        }
        a
    }

    #[test]
    fn routine_speedup_perfect_vs_serial() {
        let a = analysis();
        let routines = a.routine_speedups();
        let par = routines
            .iter()
            .find(|r| r.event == "parallel_loop")
            .unwrap();
        assert_eq!(par.points.len(), 4);
        // parallel loop: speedup == p
        for pt in &par.points {
            assert!((pt.mean - pt.processors as f64).abs() < 1e-9);
            assert!((pt.min - pt.mean).abs() < 1e-9, "no thread imbalance");
        }
        let ser = routines.iter().find(|r| r.event == "serial_setup").unwrap();
        for pt in &ser.points {
            assert!((pt.mean - 1.0).abs() < 1e-9, "serial part never speeds up");
        }
    }

    #[test]
    fn application_scaling_and_amdahl() {
        let a = analysis();
        let s = a.application_scaling().unwrap();
        assert_eq!(s.points.len(), 4);
        let (p, speedup, eff) = s.points[3];
        assert_eq!(p, 8);
        // T(1)=105, T(8)=17.5 → speedup = 6
        assert!((speedup - 6.0).abs() < 1e-9);
        assert!((eff - 0.75).abs() < 1e-9);
        // true serial fraction = 5/105 ≈ 0.0476
        let s_frac = s.amdahl_serial_fraction.unwrap();
        assert!((s_frac - 5.0 / 105.0).abs() < 1e-6, "{s_frac}");
    }

    #[test]
    fn imbalanced_threads_split_min_max() {
        let mut a = SpeedupAnalysis::new("TIME");
        a.add_trial(1, trial(1, 100.0, 0.0));
        // 2-proc trial with imbalance: thread0 60, thread1 40
        let mut p = Profile::new("p2");
        let m = p.add_metric(Metric::measured("TIME"));
        let e = p.add_event(IntervalEvent::new("parallel_loop", "COMP"));
        p.add_threads([ThreadId::new(0, 0, 0), ThreadId::new(1, 0, 0)]);
        p.set_interval(
            e,
            ThreadId::new(0, 0, 0),
            m,
            IntervalData::new(60.0, 60.0, 1.0, 0.0),
        );
        p.set_interval(
            e,
            ThreadId::new(1, 0, 0),
            m,
            IntervalData::new(40.0, 40.0, 1.0, 0.0),
        );
        a.add_trial(2, p);
        let routines = a.routine_speedups();
        let r = routines
            .iter()
            .find(|r| r.event == "parallel_loop")
            .unwrap();
        let pt = r.points.iter().find(|p| p.processors == 2).unwrap();
        assert!((pt.min - 100.0 / 60.0).abs() < 1e-9);
        assert!((pt.max - 100.0 / 40.0).abs() < 1e-9);
        assert!((pt.mean - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_analysis_is_graceful() {
        let a = SpeedupAnalysis::new("TIME");
        assert!(a.routine_speedups().is_empty());
        assert!(a.application_scaling().is_none());
        assert_eq!(a.trial_count(), 0);
    }

    #[test]
    fn report_renders() {
        let a = analysis();
        let rep = a.report();
        assert!(rep.contains("parallel_loop"));
        assert!(rep.contains("routine"));
        assert!(rep.lines().count() > 8);
    }
}
