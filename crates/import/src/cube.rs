//! CUBE format export/import.
//!
//! The paper (§7): "We hope to work with the University of Tennessee to
//! integrate the CUBE algebra with PerfDMF ... TAU already supports
//! translation of parallel profiles to CUBE format for presentation with
//! the Expert tool." This module implements that translation: the CUBE
//! 1.0 document model (Song/Wolf et al.) with its three dimensions —
//! metrics, program (call tree, flat here since profiles carry no call
//! paths), and system (machine → node → process → thread) — plus the
//! severity matrix.
//!
//! ```xml
//! <cube version="1.0">
//!   <metrics><metric id="0"><name>TIME</name></metric>...</metrics>
//!   <program><region id="0"><name>main</name></region>...</program>
//!   <system>
//!     <machine id="0"><node id="0">
//!       <process id="0"><thread id="0"/></process>
//!     </node></machine>
//!   </system>
//!   <severity>
//!     <matrix metricId="0">
//!       <row regionId="0">0.5 0.25 ...</row>
//!     </matrix>
//!   </severity>
//! </cube>
//! ```
//!
//! Severity values are *exclusive* measurements, matching CUBE's
//! convention of per-node severities that sum to inclusive values.

use crate::error::{ImportError, Result};
use perfdmf_profile::{EventId, IntervalData, IntervalEvent, Metric, MetricId, Profile, ThreadId};
use perfdmf_xml::{Element, Writer};

const FORMAT: &str = "cube";

/// Export a profile to CUBE XML.
pub fn export_cube(profile: &Profile) -> String {
    let mut out = String::with_capacity(1 << 14);
    let mut w = Writer::compact(&mut out);
    w.declaration().expect("fresh writer");
    w.begin("cube").expect("root");
    w.attr("version", "1.0").expect("attr");

    // attrs: trial provenance
    w.begin("attr").expect("open");
    w.attr("key", "PerfDMF trial").expect("attr");
    w.attr("value", &profile.name).expect("attr");
    w.end().expect("close");

    // --- metric dimension ---
    w.begin("metrics").expect("open");
    for (i, m) in profile.metrics().iter().enumerate() {
        w.begin("metric").expect("open");
        w.attr_fmt("id", i).expect("attr");
        w.text_element("name", &m.name).expect("name");
        w.text_element(
            "uom",
            if m.name.contains("TIME") {
                "sec"
            } else {
                "occ"
            },
        )
        .expect("uom");
        w.end().expect("close");
    }
    w.end().expect("close");

    // --- program dimension (flat regions) ---
    w.begin("program").expect("open");
    for (i, e) in profile.events().iter().enumerate() {
        w.begin("region").expect("open");
        w.attr_fmt("id", i).expect("attr");
        w.text_element("name", &e.name).expect("name");
        w.text_element("descr", &e.group).expect("descr");
        w.end().expect("close");
    }
    w.end().expect("close");

    // --- system dimension ---
    w.begin("system").expect("open");
    w.begin("machine").expect("open");
    w.attr_fmt("id", 0).expect("attr");
    // group threads by node, then context (process)
    let mut threads = profile.threads().to_vec();
    threads.sort();
    let mut current_node: Option<u32> = None;
    let mut current_ctx: Option<(u32, u32)> = None;
    for t in &threads {
        if current_node != Some(t.node) {
            if current_ctx.is_some() {
                w.end().expect("close process");
                current_ctx = None;
            }
            if current_node.is_some() {
                w.end().expect("close node");
            }
            w.begin("node").expect("open");
            w.attr_fmt("id", t.node).expect("attr");
            current_node = Some(t.node);
        }
        if current_ctx != Some((t.node, t.context)) {
            if current_ctx.is_some() {
                w.end().expect("close process");
            }
            w.begin("process").expect("open");
            w.attr_fmt("id", t.context).expect("attr");
            current_ctx = Some((t.node, t.context));
        }
        w.begin("thread").expect("open");
        w.attr_fmt("id", t.thread).expect("attr");
        w.end().expect("close");
    }
    if current_ctx.is_some() {
        w.end().expect("close process");
    }
    if current_node.is_some() {
        w.end().expect("close node");
    }
    w.end().expect("close machine");
    w.end().expect("close system");

    // --- severity: exclusive values per (metric, region, thread) ---
    w.begin("severity").expect("open");
    for (mi, _) in profile.metrics().iter().enumerate() {
        w.begin("matrix").expect("open");
        w.attr_fmt("metricId", mi).expect("attr");
        for (ei, _) in profile.events().iter().enumerate() {
            let mut row = String::new();
            let mut any = false;
            for t in &threads {
                let v = profile
                    .interval(EventId(ei), *t, MetricId(mi))
                    .and_then(|d| d.exclusive())
                    .unwrap_or(0.0);
                if v != 0.0 {
                    any = true;
                }
                if !row.is_empty() {
                    row.push(' ');
                }
                row.push_str(&format!("{v}"));
            }
            if any {
                w.begin("row").expect("open");
                w.attr_fmt("regionId", ei).expect("attr");
                w.text(&row).expect("text");
                w.end().expect("close");
            }
        }
        w.end().expect("close matrix");
    }
    w.end().expect("close severity");
    w.end().expect("close cube");
    w.finish().expect("balanced");
    out
}

/// Import CUBE XML (as produced by [`export_cube`]; also accepts any CUBE
/// 1.0 document with flat regions).
pub fn import_cube(text: &str) -> Result<Profile> {
    let doc = Element::parse(text)?;
    if doc.name != "cube" {
        return Err(ImportError::format(
            FORMAT,
            0,
            format!("unexpected root <{}>", doc.name),
        ));
    }
    let mut profile = Profile::new(
        doc.children_named("attr")
            .find(|a| a.attr("key") == Some("PerfDMF trial"))
            .and_then(|a| a.attr("value"))
            .unwrap_or("cube"),
    );
    profile.source_format = "cube".into();

    let metrics_el = doc
        .child("metrics")
        .ok_or_else(|| ImportError::format(FORMAT, 0, "missing <metrics>"))?;
    let mut metric_ids = Vec::new();
    for m in metrics_el.children_named("metric") {
        let name = m
            .child_text("name")
            .ok_or_else(|| ImportError::format(FORMAT, 0, "metric without <name>"))?;
        metric_ids.push(profile.add_metric(Metric::measured(name)));
    }
    let program = doc
        .child("program")
        .ok_or_else(|| ImportError::format(FORMAT, 0, "missing <program>"))?;
    let mut event_ids = Vec::new();
    for r in program.children_named("region") {
        let name = r
            .child_text("name")
            .ok_or_else(|| ImportError::format(FORMAT, 0, "region without <name>"))?;
        let group = r.child_text("descr").unwrap_or("CUBE");
        event_ids.push(profile.add_event(IntervalEvent::new(name, group)));
    }

    // system: machine/node/process/thread nesting
    let system = doc
        .child("system")
        .ok_or_else(|| ImportError::format(FORMAT, 0, "missing <system>"))?;
    let mut threads = Vec::new();
    for machine in system.children_named("machine") {
        for node in machine.children_named("node") {
            let n: u32 = node.attr("id").and_then(|s| s.parse().ok()).unwrap_or(0);
            for process in node.children_named("process") {
                let c: u32 = process.attr("id").and_then(|s| s.parse().ok()).unwrap_or(0);
                for thread in process.children_named("thread") {
                    let t: u32 = thread.attr("id").and_then(|s| s.parse().ok()).unwrap_or(0);
                    threads.push(ThreadId::new(n, c, t));
                }
            }
        }
    }
    threads.sort();
    profile.add_threads(threads.iter().copied());

    if let Some(severity) = doc.child("severity") {
        for matrix in severity.children_named("matrix") {
            let mi: usize = matrix
                .require_attr("metricId")?
                .parse()
                .map_err(|_| ImportError::format(FORMAT, 0, "bad metricId"))?;
            let &metric = metric_ids
                .get(mi)
                .ok_or_else(|| ImportError::format(FORMAT, 0, "metricId out of range"))?;
            for row in matrix.children_named("row") {
                let ei: usize = row
                    .require_attr("regionId")?
                    .parse()
                    .map_err(|_| ImportError::format(FORMAT, 0, "bad regionId"))?;
                let &event = event_ids
                    .get(ei)
                    .ok_or_else(|| ImportError::format(FORMAT, 0, "regionId out of range"))?;
                for (pos, tok) in row.text().split_whitespace().enumerate() {
                    let v: f64 = tok.parse().map_err(|_| {
                        ImportError::format(FORMAT, 0, format!("bad severity value {tok:?}"))
                    })?;
                    if v == 0.0 {
                        continue;
                    }
                    let Some(&thread) = threads.get(pos) else {
                        return Err(ImportError::format(
                            FORMAT,
                            0,
                            "severity row longer than the thread list",
                        ));
                    };
                    profile.set_interval(
                        event,
                        thread,
                        metric,
                        IntervalData::new(v, v, f64::NAN, f64::NAN),
                    );
                }
            }
        }
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profile {
        let mut p = Profile::new("cube-trial");
        let time = p.add_metric(Metric::measured("TIME"));
        let fp = p.add_metric(Metric::measured("PAPI_FP_OPS"));
        let a = p.add_event(IntervalEvent::new("main", "USER"));
        let b = p.add_event(IntervalEvent::new("MPI_Send()", "MPI"));
        // 2 nodes × 2 contexts × 1 thread
        p.add_threads([
            ThreadId::new(0, 0, 0),
            ThreadId::new(0, 1, 0),
            ThreadId::new(1, 0, 0),
            ThreadId::new(1, 1, 0),
        ]);
        for (i, &t) in p.threads().to_vec().iter().enumerate() {
            p.set_interval(
                a,
                t,
                time,
                IntervalData::new(10.0 + i as f64, 10.0 + i as f64, 1.0, 0.0),
            );
            p.set_interval(b, t, time, IntervalData::new(2.0, 2.0, 5.0, 0.0));
            p.set_interval(a, t, fp, IntervalData::new(1e9, 1e9, 1.0, 0.0));
        }
        p
    }

    #[test]
    fn roundtrip_preserves_severities() {
        let p = sample();
        let xml = export_cube(&p);
        let back = import_cube(&xml).unwrap();
        assert_eq!(back.name, "cube-trial");
        assert_eq!(back.metrics().len(), 2);
        assert_eq!(back.events().len(), 2);
        assert_eq!(back.threads().len(), 4);
        let time = back.find_metric("TIME").unwrap();
        let main = back.find_event("main").unwrap();
        assert_eq!(
            back.interval(main, ThreadId::new(1, 1, 0), time)
                .unwrap()
                .exclusive(),
            Some(13.0)
        );
        let fp = back.find_metric("PAPI_FP_OPS").unwrap();
        assert_eq!(
            back.interval(main, ThreadId::new(0, 0, 0), fp)
                .unwrap()
                .exclusive(),
            Some(1e9)
        );
    }

    #[test]
    fn system_tree_nesting() {
        let xml = export_cube(&sample());
        let doc = Element::parse(&xml).unwrap();
        let machine = doc.child("system").unwrap().child("machine").unwrap();
        let nodes: Vec<_> = machine.children_named("node").collect();
        assert_eq!(nodes.len(), 2);
        let procs: Vec<_> = nodes[0].children_named("process").collect();
        assert_eq!(procs.len(), 2);
        assert_eq!(procs[0].children_named("thread").count(), 1);
    }

    #[test]
    fn rejects_malformed() {
        assert!(import_cube("<notcube/>").is_err());
        assert!(import_cube("<cube version=\"1.0\"/>").is_err());
        let bad = r#"<cube version="1.0"><metrics><metric id="0"><name>T</name></metric></metrics>
            <program><region id="0"><name>f</name></region></program>
            <system><machine id="0"><node id="0"><process id="0"><thread id="0"/></process></node></machine></system>
            <severity><matrix metricId="9"><row regionId="0">1</row></matrix></severity></cube>"#;
        assert!(import_cube(bad).is_err());
    }

    #[test]
    fn zero_severities_skipped() {
        let mut p = Profile::new("z");
        let m = p.add_metric(Metric::measured("T"));
        let a = p.add_event(IntervalEvent::ungrouped("used"));
        let b = p.add_event(IntervalEvent::ungrouped("empty"));
        p.add_thread(ThreadId::ZERO);
        p.set_interval(a, ThreadId::ZERO, m, IntervalData::new(1.0, 1.0, 1.0, 0.0));
        let _ = b;
        let back = import_cube(&export_cube(&p)).unwrap();
        assert_eq!(back.data_point_count(), 1);
    }
}
