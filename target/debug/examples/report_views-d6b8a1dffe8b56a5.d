/root/repo/target/debug/examples/report_views-d6b8a1dffe8b56a5.d: examples/report_views.rs

/root/repo/target/debug/examples/report_views-d6b8a1dffe8b56a5: examples/report_views.rs

examples/report_views.rs:
