/root/repo/target/debug/deps/flexible_schema-5e3a1a74c31bf8af.d: tests/flexible_schema.rs

/root/repo/target/debug/deps/flexible_schema-5e3a1a74c31bf8af: tests/flexible_schema.rs

tests/flexible_schema.rs:
