//! Large-scale data handling (paper §3.1 / §5.3) — experiment E1.
//!
//! "Our tests with large profile data (101 events on 16K processors)
//! showed the framework adequately handled the mass of data. ... The 16K
//! processor run consisted of over 1.6 million data points, and the
//! PerfDMF API was able to handle the data without problems."
//!
//! This example sweeps Miranda-shaped trials over processor counts,
//! measuring generate / store / query / summarize times and printing the
//! data-point counts. The default sweep tops out at 4K processors to stay
//! quick in debug builds; pass `--full` for the paper's 8K and 16K points
//! (use `--release`).
//!
//! Run with: `cargo run --release --example large_scale_miranda [-- --full]`

use perfdmf::core::{load_trial_filtered, DatabaseSession, LoadFilter};
use perfdmf::db::{Connection, Value};
use perfdmf::workload::MirandaModel;
use std::time::Instant;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let proc_counts: &[usize] = if full {
        &[1024, 2048, 4096, 8192, 16384]
    } else {
        &[256, 512, 1024, 2048, 4096]
    };
    let model = MirandaModel::default();
    println!(
        "Miranda-shaped scale sweep: {} events per trial, 1 metric (WALL_CLOCK)",
        model.events
    );
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "procs", "data points", "gen (s)", "store (s)", "query (s)", "summ (s)"
    );

    for &procs in proc_counts {
        let conn = Connection::open_in_memory();
        let mut session = DatabaseSession::new(conn.clone()).unwrap();

        let t0 = Instant::now();
        let profile = model.generate(procs);
        let gen_s = t0.elapsed().as_secs_f64();
        let points = profile.data_point_count();

        let t0 = Instant::now();
        let trial_id = session.store_profile("miranda", "bgl", &profile).unwrap();
        let store_s = t0.elapsed().as_secs_f64();

        // Representative analysis queries over the mass of data:
        let t0 = Instant::now();
        // (a) SQL aggregate across every location row
        let rs = conn
            .query(
                "SELECT COUNT(*), AVG(p.exclusive), MAX(p.exclusive)
                 FROM interval_event e
                 JOIN interval_location_profile p ON p.interval_event = e.id
                 WHERE e.trial = ?",
                &[Value::Int(trial_id)],
            )
            .unwrap();
        let row_count = rs.rows[0][0].as_int().unwrap();
        // (b) selective load of a single node (the partial-load API)
        let part = load_trial_filtered(
            &conn,
            trial_id,
            &LoadFilter {
                node: Some(0),
                ..Default::default()
            },
        )
        .unwrap();
        let query_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let m = profile.find_metric("WALL_CLOCK").unwrap();
        let totals = profile.total_summary(m);
        let summ_s = t0.elapsed().as_secs_f64();

        assert_eq!(row_count as usize, points, "no rows lost");
        assert_eq!(part.threads().len(), 1);
        assert_eq!(totals.len(), model.events);

        println!(
            "{procs:>8} {points:>12} {gen_s:>10.3} {store_s:>10.3} {query_s:>10.3} {summ_s:>10.3}"
        );
    }
    if full {
        println!("\n(16384 procs × 101 events = 1,654,784 data points — the paper's 1.6M)");
    } else {
        println!("\n(pass --full with --release for the paper's 8K/16K processor points)");
    }
}
