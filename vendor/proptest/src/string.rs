//! String strategies from regex-like literals.
//!
//! `&'static str` implements [`Strategy`] with `Value = String`: the
//! pattern is interpreted as a sequence of atoms — a character class
//! `[...]` (with `a-z` ranges, literal `-` last, literal `.`), the
//! printable-character escape `\PC`, or a literal character — each
//! optionally followed by `{n}` / `{m,n}` repetition. This covers every
//! pattern in the workspace's tests; anything else panics loudly rather
//! than silently generating the wrong language.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// Inclusive char ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
    /// `\PC`: any printable (non-control) character.
    Printable,
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32, // inclusive
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                let mut pending: Option<char> = None;
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                    match c {
                        ']' => break,
                        '-' => {
                            // Range if we hold a start char and a real
                            // end follows; a trailing `-` is literal.
                            match (pending.take(), chars.peek()) {
                                (Some(start), Some(&end)) if end != ']' => {
                                    chars.next();
                                    ranges.push((start, end));
                                }
                                (held, _) => {
                                    if let Some(h) = held {
                                        ranges.push((h, h));
                                    }
                                    pending = Some('-');
                                }
                            }
                        }
                        other => {
                            if let Some(h) = pending.replace(other) {
                                ranges.push((h, h));
                            }
                        }
                    }
                }
                if let Some(h) = pending {
                    ranges.push((h, h));
                }
                assert!(!ranges.is_empty(), "empty class in {pattern:?}");
                Atom::Class(ranges)
            }
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                match esc {
                    'P' | 'p' => {
                        let prop = chars.next();
                        assert!(
                            prop == Some('C'),
                            "unsupported \\{esc}{prop:?} in {pattern:?} (only \\PC)"
                        );
                        Atom::Printable
                    }
                    // Escaped literal metacharacter.
                    other => Atom::Literal(other),
                }
            }
            '{' | '}' | '*' | '+' | '?' | '|' | '(' | ')' => {
                panic!("unsupported regex syntax {c:?} in {pattern:?}")
            }
            other => Atom::Literal(other),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => panic!("unterminated repetition in {pattern:?}"),
                }
            }
            match spec.split_once(',') {
                Some((lo, hi)) => {
                    let lo: u32 = lo.trim().parse().expect("bad repetition lower bound");
                    let hi: u32 = hi.trim().parse().expect("bad repetition upper bound");
                    assert!(lo <= hi, "inverted repetition in {pattern:?}");
                    (lo, hi)
                }
                None => {
                    let n: u32 = spec.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            // Weight ranges by width for a uniform pick over the class.
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let width = (*hi as u64) - (*lo as u64) + 1;
                if pick < width {
                    return char::from_u32(*lo as u32 + pick as u32)
                        .expect("class range spans invalid scalar");
                }
                pick -= width;
            }
            unreachable!("weighted pick out of bounds")
        }
        Atom::Printable => {
            // Mostly printable ASCII, with some multi-byte thrown in to
            // exercise UTF-8 handling.
            const EXOTIC: &[char] = &['λ', 'é', 'Ω', '中', '\u{00A0}', '𝛑'];
            if rng.below(8) == 0 {
                EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
            } else {
                char::from_u32(0x20 + rng.below(0x7F - 0x20) as u32).unwrap()
            }
        }
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let span = (piece.max - piece.min + 1) as u64;
            let count = piece.min + rng.below(span) as u32;
            for _ in 0..count {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_trailing_dash_and_dot() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..300 {
            let s = "[A-Za-z0-9_.-]{1,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 8);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-'));
        }
    }

    #[test]
    fn printable_escape_avoids_controls() {
        let mut rng = TestRng::from_seed(4);
        for _ in 0..100 {
            let s = "\\PC{0,40}".generate(&mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn literal_runs_and_counts() {
        let mut rng = TestRng::from_seed(5);
        let s = "ab{3}c".generate(&mut rng);
        assert_eq!(s, "abbbc");
    }
}
