/root/repo/target/debug/deps/perfdmf-51a7bf306e763e98.d: src/bin/perfdmf.rs

/root/repo/target/debug/deps/perfdmf-51a7bf306e763e98: src/bin/perfdmf.rs

src/bin/perfdmf.rs:
