//! Offline shim for the `crossbeam` crate.
//!
//! Implements the subset this workspace uses:
//!
//! * [`channel`] — MPMC channels (`unbounded`/`bounded`) with clonable
//!   senders *and* receivers, built on `Mutex<VecDeque>` + `Condvar`.
//! * [`thread`] — `scope`/`Scope::spawn` in crossbeam's API shape,
//!   delegating to `std::thread::scope`.

pub mod channel;
pub mod thread;
