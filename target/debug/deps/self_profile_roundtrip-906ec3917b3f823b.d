/root/repo/target/debug/deps/self_profile_roundtrip-906ec3917b3f823b.d: crates/core/tests/self_profile_roundtrip.rs

/root/repo/target/debug/deps/self_profile_roundtrip-906ec3917b3f823b: crates/core/tests/self_profile_roundtrip.rs

crates/core/tests/self_profile_roundtrip.rs:
