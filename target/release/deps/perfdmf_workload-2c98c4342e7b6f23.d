/root/repo/target/release/deps/perfdmf_workload-2c98c4342e7b6f23.d: crates/workload/src/lib.rs crates/workload/src/models.rs crates/workload/src/writers.rs

/root/repo/target/release/deps/libperfdmf_workload-2c98c4342e7b6f23.rlib: crates/workload/src/lib.rs crates/workload/src/models.rs crates/workload/src/writers.rs

/root/repo/target/release/deps/libperfdmf_workload-2c98c4342e7b6f23.rmeta: crates/workload/src/lib.rs crates/workload/src/models.rs crates/workload/src/writers.rs

crates/workload/src/lib.rs:
crates/workload/src/models.rs:
crates/workload/src/writers.rs:
